"""The engine's scheduler: queues, admission, and the coalescing plan.

PRs 1-6 grew this logic inline in ``LLMEngine._loop``/``_admit``/
``_plan_jump``; it now lives in an explicit :class:`Scheduler` object
holding the waiting queue and running batch, with the policy decisions
— queue order, per-iteration admission, preemption victim choice, and
the coalesced-decode jump plan — delegated to a pluggable
:class:`SchedulingPolicy`:

* :class:`FcfsPolicy` (default) is the legacy behavior, verbatim:
  FCFS admission while KV blocks allow, LIFO recompute-preemption,
  and the PR 4 multi-iteration coalescing plan.  Bit-identical to the
  pre-extraction engine by construction (the property suite in
  ``tests/vllm/test_engine_coalescing.py`` holds it to that).
* :class:`PriorityPolicy` keeps the waiting queue ordered by
  ``(-priority, arrival)`` and preempts lower-priority running
  requests when a higher-priority arrival cannot otherwise be
  admitted.
* :class:`ChunkedPrefillPolicy` spreads each prompt's prefill over
  iterations in ``chunk_tokens`` slices, so one long prompt no longer
  stalls every in-flight decode for a full prefill (the TTFT tail win
  of chunked prefill).

Coalescing compatibility (see ``docs/serving.md``): the jump plan's
proof obligations — "the waiting head cannot become admissible
mid-jump" and "no first token fires mid-jump" — are FCFS-specific, so
only :class:`FcfsPolicy` declares ``supports_coalescing``.  The other
policies return a zero-length jump and the engine asserts it never
enters a fast-forward under them.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from ..errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover
    from .engine import LLMEngine, Request

__all__ = ["Scheduler", "SchedulingPolicy", "FcfsPolicy", "PriorityPolicy",
           "ChunkedPrefillPolicy", "SCHEDULER_POLICIES", "make_policy"]

#: Policy names accepted by ``--scheduler-policy`` / ``ScenarioSpec``.
SCHEDULER_POLICIES = ("fcfs", "priority", "chunked")


class SchedulingPolicy:
    """Strategy interface; every hook receives the owning Scheduler."""

    name = "abstract"
    #: Whether the PR 4 coalesced-decode fast-forward may run under
    #: this policy.  Only FCFS can: the jump-plan argument relies on
    #: admission order being frozen while the engine sleeps.
    supports_coalescing = False

    def enqueue(self, sched: Scheduler, request: Request) -> None:
        raise NotImplementedError

    def requeue(self, sched: Scheduler, victim: Request) -> None:
        """Return a preempted request to the waiting queue."""
        raise NotImplementedError

    def schedule(self, sched: Scheduler) -> int:
        """Admit work for one iteration; returns prefill tokens to
        charge this step."""
        raise NotImplementedError

    def plan_jump(self, sched: Scheduler) -> int:
        """Iterations provably free of scheduling events (0 = none)."""
        return 0

    def victim(self, sched: Scheduler,
               protect: Request) -> Request | None:
        """Choose a preemption victim so ``protect`` can grow."""
        for candidate in reversed(sched.running):
            if candidate is not protect:
                return candidate
        return None


class Scheduler:
    """Owns the waiting queue and running batch of one engine.

    The engine keeps the resources (BlockManager, perf model, KV
    counter) and the iteration loop; the scheduler decides *which*
    requests hold them.  ``waiting``/``running`` are the only queue
    storage — ``LLMEngine.waiting``/``running`` are views onto them.
    """

    def __init__(self, engine: LLMEngine, policy: SchedulingPolicy):
        self.engine = engine
        self.policy = policy
        self.waiting: deque[Request] = deque()
        self.running: list[Request] = []

    @property
    def supports_coalescing(self) -> bool:
        return self.policy.supports_coalescing

    def enqueue(self, request: Request) -> None:
        self.policy.enqueue(self, request)

    def requeue(self, victim: Request) -> None:
        self.policy.requeue(self, victim)

    def schedule(self) -> int:
        return self.policy.schedule(self)

    def plan_jump(self) -> int:
        return self.policy.plan_jump(self)

    def victim(self, protect: Request) -> Request | None:
        return self.policy.victim(self, protect)

    # -- shared admission machinery ----------------------------------------------

    def can_admit(self, request: Request) -> bool:
        """The one admission predicate, shared by admission and
        :meth:`plan_jump`.

        This sharing is the coalescing guard: per-iteration stepping
        and the fast-forward planner must agree *exactly* on whether
        the waiting head is admissible (prefix-cache hits and
        evictable blocks included), or a jump could sleep past an
        admission the stepwise engine would have made — breaking
        bit-identity.
        """
        blocks = self.engine.blocks
        return blocks.can_allocate(request.total_tokens,
                                   prefix_key=request.session_key)

    def admit_head(self) -> Request:
        """Pop the waiting head into the running batch; returns it with
        ``cached_tokens``/``needs_prefill`` updated (prefill cost is
        the caller's to account — policies differ on when to pay it).
        """
        engine = self.engine
        nxt = self.waiting.popleft()
        if nxt.admitted_at is None:   # keep first admission on recompute
            nxt.admitted_at = engine.kernel.now
        cached = engine.blocks.allocate(nxt.id, nxt.total_tokens,
                                        prefix_key=nxt.session_key)
        nxt.cached_tokens = cached
        nxt.needs_prefill = True
        nxt.active = True
        self.running.append(nxt)
        engine._kv_tokens += nxt.total_tokens
        return nxt


class FcfsPolicy(SchedulingPolicy):
    """First-come-first-served admission — the legacy engine, verbatim."""

    name = "fcfs"
    supports_coalescing = True

    def enqueue(self, sched: Scheduler, request: Request) -> None:
        sched.waiting.append(request)

    def requeue(self, sched: Scheduler, victim: Request) -> None:
        # Recompute-preemption readmits LIFO: the youngest victim goes
        # back first, ahead of never-admitted arrivals.
        sched.waiting.appendleft(victim)

    def schedule(self, sched: Scheduler) -> int:
        """FCFS admission while KV blocks allow; returns prefill tokens.

        With prefix caching, tokens covered by cached blocks are
        excluded from the returned prefill cost — the engine skips that
        compute entirely, which is the TTFT win of a warm conversation.
        A ``prefill_done`` request (disaggregated handoff) charges no
        prefill at all on its first admission: the KV arrived over the
        fabric.
        """
        engine = sched.engine
        waiting = sched.waiting
        prefill = 0
        while waiting and len(sched.running) < engine.args.max_num_seqs:
            nxt = waiting[0]
            needed = nxt.total_tokens  # includes recompute after preemption
            if not sched.can_admit(nxt):
                break
            sched.admit_head()
            if nxt.prefill_done:
                # One-shot: a preemption drops the transferred KV, so
                # recompute prefills locally like any other request.
                nxt.prefill_done = False
                nxt.needs_prefill = False
            else:
                prefill += needed - nxt.cached_tokens
        return prefill

    def plan_jump(self, sched: Scheduler) -> int:
        """Iterations guaranteed free of finishes, first tokens,
        admissions, and preemptions — eligible for one coalesced sleep.

        A *blocked* waiting queue cannot unblock mid-jump (free KV
        blocks only shrink between finishes and the batch-size cap only
        loosens at one) — but an *admissible* head must be admitted at
        this boundary, exactly as per-iteration stepping would: a
        request that arrived during the previous iteration's sleep had
        no jump wake to nudge, so it must not be slept past here.

        Prefix caching does not loosen this argument: admissibility
        (:meth:`Scheduler.can_admit`) reads cached hits plus evictable
        blocks, and mid-jump neither can grow — registrations happen
        only at finishes (none in a jump) and appends only consume
        capacity.  Evictable cached blocks *do* count toward the
        block-crossing budget below: evictions cost no simulated time
        and pop a deterministic LRU, so bulk-applied iterations evict
        exactly the blocks per-iteration stepping would.
        """
        engine = sched.engine
        running = sched.running
        waiting = sched.waiting
        if waiting and (len(running) < engine.args.max_num_seqs
                        and sched.can_admit(waiting[0])):
            return 0
        # Single pass over the batch: the shortest remaining decode
        # bounds the jump, and any pending prefill vetoes it.  This
        # runs once per coalesced sleep, so it stays allocation-free
        # until the KV-headroom check below actually needs per-offset
        # accounting.
        j = -1
        for request in running:
            if request.needs_prefill:   # first token pending
                return 0
            left = request.max_new_tokens - request.tokens_generated
            if j < 0 or left < j:
                j = left
        j -= 1
        if j < 1:
            return 0
        blocks = engine.blocks
        free = blocks.free_blocks + blocks.evictable_blocks
        bs = blocks.block_size
        # Worst case every sequence crosses a block edge once per ``bs``
        # iterations; bound j so the crossings cannot exhaust the free
        # blocks (which would mean a mid-jump preemption).  When even
        # the worst case fits, skip the per-offset histogram — the hot
        # case whenever KV headroom is plentiful.
        if len(running) * (j // bs + 1) <= free:
            return j
        counts = [0] * bs
        for request in running:
            counts[(request.total_tokens - 1) % bs] += 1

        def crossings(jj: int) -> int:
            return sum(c * ((s + jj) // bs)
                       for s, c in enumerate(counts) if c)

        if crossings(j) > free:
            lo, hi = 0, j
            while lo < hi:
                mid = (lo + hi + 1) // 2
                if crossings(mid) <= free:
                    lo = mid
                else:
                    hi = mid - 1
            j = lo
        return j


class PriorityPolicy(SchedulingPolicy):
    """Priority admission with cross-class preemption.

    The waiting queue is kept ordered by ``(-priority, arrival)``; a
    waiting head that cannot be admitted may evict a running request of
    *strictly lower* priority (recompute-style, youngest victim first
    among the lowest class).  Within one priority class the behavior
    degenerates to FCFS — the policy-swap equivalence tests pin that.
    Coalescing is off: an admissible-priority arrival must be able to
    preempt at the very next iteration boundary, which the jump plan
    cannot guarantee.
    """

    name = "priority"

    @staticmethod
    def _key(request: Request) -> tuple:
        # ``id`` is monotone within one engine (process-global counter),
        # so it is the arrival tie-break; a preempted request keeps its
        # original id and re-sorts ahead of younger peers of its class.
        return (-request.priority, request.id)

    def _insert(self, sched: Scheduler, request: Request) -> None:
        waiting = sched.waiting
        key = self._key(request)
        # Linear scan from the tail: arrivals are usually lowest-rank.
        idx = len(waiting)
        while idx > 0 and self._key(waiting[idx - 1]) > key:
            idx -= 1
        waiting.insert(idx, request)

    def enqueue(self, sched: Scheduler, request: Request) -> None:
        self._insert(sched, request)

    def requeue(self, sched: Scheduler, victim: Request) -> None:
        self._insert(sched, victim)

    def victim(self, sched: Scheduler,
               protect: Request) -> Request | None:
        # Lowest priority first; LIFO (latest id) within the class.
        best = None
        for candidate in sched.running:
            if candidate is protect:
                continue
            if best is None or (candidate.priority, -candidate.id) \
                    < (best.priority, -best.id):
                best = candidate
        return best

    def schedule(self, sched: Scheduler) -> int:
        engine = sched.engine
        waiting = sched.waiting
        prefill = 0
        while waiting and len(sched.running) < engine.args.max_num_seqs:
            nxt = waiting[0]
            needed = nxt.total_tokens
            while not sched.can_admit(nxt):
                # Make room by evicting strictly lower-priority work.
                victim = self.victim(sched, nxt)
                if victim is None or victim.priority >= nxt.priority:
                    break
                engine._preempt(victim)
            if not sched.can_admit(nxt):
                break
            sched.admit_head()
            if nxt.prefill_done:
                nxt.prefill_done = False
                nxt.needs_prefill = False
            else:
                prefill += needed - nxt.cached_tokens
        return prefill


class ChunkedPrefillPolicy(SchedulingPolicy):
    """FCFS admission with prefill spread over ``chunk_tokens`` slices.

    Each iteration charges at most ``chunk_tokens`` of prefill compute:
    in-flight prefills (admission order) drain first, then new
    admissions join while budget remains.  A request holds its KV
    allocation from admission but generates nothing until its
    ``prefill_remaining`` reaches zero — so a 100k-token prompt adds
    bounded latency to every iteration instead of one giant stall,
    trading its own TTFT for the batch's inter-token latency.
    Coalescing is off: prefill slices are per-iteration events by
    definition.
    """

    name = "chunked"

    def __init__(self, chunk_tokens: int = 512):
        if chunk_tokens < 1:
            raise ConfigurationError(
                f"chunk_tokens must be positive, got {chunk_tokens}")
        self.chunk_tokens = chunk_tokens

    def enqueue(self, sched: Scheduler, request: Request) -> None:
        sched.waiting.append(request)

    def requeue(self, sched: Scheduler, victim: Request) -> None:
        victim.prefill_remaining = 0   # recompute restarts the slices
        sched.waiting.appendleft(victim)

    def schedule(self, sched: Scheduler) -> int:
        engine = sched.engine
        budget = self.chunk_tokens
        charged = 0
        # Drain in-flight prefills first, in admission order.
        for request in sched.running:
            if budget <= 0:
                break
            if request.prefill_remaining > 0:
                take = min(budget, request.prefill_remaining)
                request.prefill_remaining -= take
                budget -= take
                charged += take
        # Admit while budget remains for at least one slice.
        waiting = sched.waiting
        while (budget > 0 and waiting
               and len(sched.running) < engine.args.max_num_seqs):
            nxt = waiting[0]
            needed = nxt.total_tokens
            if not sched.can_admit(nxt):
                break
            sched.admit_head()
            if nxt.prefill_done:
                nxt.prefill_done = False
                nxt.needs_prefill = False
                continue
            remaining = needed - nxt.cached_tokens
            take = min(budget, remaining)
            nxt.prefill_remaining = remaining - take
            budget -= take
            charged += take
        return charged


def make_policy(name: str, chunk_tokens: int = 512) -> SchedulingPolicy:
    """Policy factory for ``EngineArgs.scheduler_policy``."""
    if name == "fcfs":
        return FcfsPolicy()
    if name == "priority":
        return PriorityPolicy()
    if name == "chunked":
        return ChunkedPrefillPolicy(chunk_tokens=chunk_tokens)
    raise ConfigurationError(
        f"unknown scheduler policy {name!r} "
        f"(choices: {', '.join(SCHEDULER_POLICIES)})")
