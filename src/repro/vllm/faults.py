"""Fault injection for the engine.

Reproduces the paper's reliability observations: Fig. 12 run 1 "crashed
with a batch size of 512 queries" (a memory-leak style failure after
enough load), and containers that "crash (e.g., due to a memory leak bug)"
under Kubernetes get restarted automatically.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import TYPE_CHECKING

from .engine import EngineCrash

if TYPE_CHECKING:  # pragma: no cover
    from .engine import LLMEngine


class FaultPlan:
    """A set of triggers checked at every engine iteration."""

    def __init__(self, *triggers: Callable[["LLMEngine"], str | None]):
        self.triggers = list(triggers)
        self.fired: list[str] = []

    def add(self, trigger: Callable[["LLMEngine"], str | None]) -> None:
        self.triggers.append(trigger)

    def check(self, engine: LLMEngine) -> None:
        for trigger in self.triggers:
            reason = trigger(engine)
            if reason:
                self.fired.append(reason)
                raise EngineCrash(reason, sim_time=engine.kernel.now)


def attach(engine: LLMEngine,
           *triggers: Callable[["LLMEngine"], str | None]) -> FaultPlan:
    """Arm triggers on a *live* engine (chaos runtime injection).

    Triggers are checked at the engine's next iteration — an idle engine
    crashes when load next arrives, which is how latent faults (leaks,
    collective timeouts) manifest in practice.
    """
    if engine.fault_plan is None:
        engine.fault_plan = FaultPlan(*triggers)
    else:
        for trigger in triggers:
            engine.fault_plan.add(trigger)
    # A coalesced decode sleep must notice the new plan at its next
    # iteration boundary (idle engines still wait for load, per above).
    engine.nudge()
    return engine.fault_plan


def CrashAfterRequests(n: int, reason: str = "memory leak: engine OOM"
                       ) -> Callable[["LLMEngine"], str | None]:
    """Crash once ``n`` requests have been accepted (cumulative load
    trigger — how run 1's crash at the batch-512 sweep point manifests)."""
    def trigger(engine: LLMEngine) -> str | None:
        if engine.total_requests >= n:
            return f"{reason} (after {engine.total_requests} requests)"
        return None
    return trigger


def CrashAtTime(t: float, reason: str = "injected failure"
                ) -> Callable[["LLMEngine"], str | None]:
    """Crash at the first iteration after simulated time ``t``."""
    def trigger(engine: LLMEngine) -> str | None:
        if engine.kernel.now >= t:
            return f"{reason} (at t={engine.kernel.now:.0f}s)"
        return None
    return trigger


def CrashOnConcurrency(threshold: int,
                       reason: str = "NCCL collective timeout"
                       ) -> Callable[["LLMEngine"], str | None]:
    """Crash when the running batch first reaches ``threshold``."""
    def trigger(engine: LLMEngine) -> str | None:
        if len(engine.running) >= threshold:
            return (f"{reason} (running batch {len(engine.running)} >= "
                    f"{threshold})")
        return None
    return trigger
