"""Engine arguments and the offline-serving environment contract."""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from ..errors import ConfigurationError

#: Environment variables the paper sets for disconnected serving (Fig. 4/5).
OFFLINE_ENV_FLAGS = (
    "HF_HUB_OFFLINE",
    "TRANSFORMERS_OFFLINE",
    "HF_DATASETS_OFFLINE",
)

#: Telemetry opt-outs the paper also sets; tracked for artifact fidelity.
TELEMETRY_ENV_FLAGS = (
    "HF_HUB_DISABLE_TELEMETRY",
    "VLLM_NO_USAGE_STATS",
    "DO_NOT_TRACK",
)


@dataclass
class EngineArgs:
    """Parsed ``vllm serve`` configuration (subset the case study uses)."""

    model: str
    tensor_parallel_size: int = 1
    pipeline_parallel_size: int = 1
    max_model_len: int | None = None
    gpu_memory_utilization: float = 0.90
    max_num_seqs: int = 1024
    enable_prefix_caching: bool = False
    served_model_name: str | None = None
    host: str = "0.0.0.0"
    port: int = 8000
    disable_log_requests: bool = False
    override_generation_config: dict = field(default_factory=dict)
    #: engine scheduler policy: ``fcfs`` (default), ``priority``, or
    #: ``chunked`` (chunked prefill; budget below).
    scheduler_policy: str = "fcfs"
    chunk_tokens: int = 512
    #: disaggregated-serving role: ``unified`` serves whole requests;
    #: ``prefill`` runs to the first token and hands the KV off;
    #: ``decode`` continues handed-off requests.
    disagg_role: str = "unified"

    def __post_init__(self):
        if self.tensor_parallel_size < 1 or self.pipeline_parallel_size < 1:
            raise ConfigurationError("parallel sizes must be >= 1")
        if not (0.1 <= self.gpu_memory_utilization <= 1.0):
            raise ConfigurationError(
                f"gpu_memory_utilization {self.gpu_memory_utilization} "
                "out of range")
        if self.max_model_len is not None and self.max_model_len < 16:
            raise ConfigurationError("max_model_len too small")
        if self.scheduler_policy not in ("fcfs", "priority", "chunked"):
            raise ConfigurationError(
                f"unknown scheduler_policy {self.scheduler_policy!r} "
                "(choices: fcfs, priority, chunked)")
        if self.chunk_tokens < 1:
            raise ConfigurationError("chunk_tokens must be positive")
        if self.disagg_role not in ("unified", "prefill", "decode"):
            raise ConfigurationError(
                f"unknown disagg_role {self.disagg_role!r} "
                "(choices: unified, prefill, decode)")

    @property
    def public_model_name(self) -> str:
        return self.served_model_name or self.model


def parse_serve_command(command: tuple[str, ...]) -> EngineArgs:
    """Parse a ``vllm serve``-style argv into :class:`EngineArgs`.

    Accepts both ``--flag=value`` and ``--flag value`` forms, and both
    underscore and hyphen spellings (the paper's figures mix them:
    ``--tensor_parallel_size=4`` vs ``--tensor-parallel-size=4``).
    """
    args = list(command)
    if args and args[0] == "vllm":
        args.pop(0)  # chart commands include the binary name
    if args and args[0] == "serve":
        args.pop(0)
    if not args or args[0].startswith("--"):
        raise ConfigurationError(
            f"vllm serve needs a model argument, got {command!r}")
    model = args.pop(0)
    kwargs: dict = {}
    i = 0
    while i < len(args):
        token = args[i]
        if not token.startswith("--"):
            raise ConfigurationError(f"unexpected argument {token!r}")
        if "=" in token:
            flag, value = token[2:].split("=", 1)
            i += 1
        else:
            flag = token[2:]
            if flag in ("disable-log-requests", "disable_log_requests",
                        "enable-prefix-caching", "enable_prefix_caching"):
                value = "true"
                i += 1
            else:
                if i + 1 >= len(args):
                    raise ConfigurationError(f"flag {token!r} needs a value")
                value = args[i + 1]
                i += 2
        key = flag.replace("-", "_")
        if key == "tensor_parallel_size":
            kwargs[key] = int(value)
        elif key == "pipeline_parallel_size":
            kwargs[key] = int(value)
        elif key == "max_model_len":
            kwargs[key] = int(value)
        elif key == "max_num_seqs":
            kwargs[key] = int(value)
        elif key == "gpu_memory_utilization":
            kwargs[key] = float(value)
        elif key == "served_model_name":
            kwargs[key] = value
        elif key == "host":
            kwargs[key] = value
        elif key == "port":
            kwargs[key] = int(value)
        elif key == "disable_log_requests":
            kwargs[key] = value.lower() in ("1", "true", "yes")
        elif key == "enable_prefix_caching":
            kwargs[key] = value.lower() in ("1", "true", "yes")
        elif key == "scheduler_policy":
            kwargs[key] = value
        elif key == "chunk_tokens":
            kwargs[key] = int(value)
        elif key == "disagg_role":
            kwargs[key] = value
        elif key == "override_generation_config":
            try:
                kwargs[key] = json.loads(value)
            except json.JSONDecodeError as exc:
                raise ConfigurationError(
                    f"bad JSON for --override-generation-config: {exc}"
                ) from exc
        else:
            raise ConfigurationError(f"unknown vllm serve flag --{flag}")
    return EngineArgs(model=model, **kwargs)


def is_offline_env(env: dict[str, str]) -> bool:
    """True when every offline flag is set (paper's disconnected mode)."""
    return all(env.get(flag) == "1" for flag in OFFLINE_ENV_FLAGS)
