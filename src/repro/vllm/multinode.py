"""Multi-node inference: Ray cluster under a WLM job, then vLLM on top.

Section 3.5 of the paper: *"we achieve this by deploying a multi-node job
running one vLLM container per node, executing the Ray cluster startup
command as its entry point.  Once the Ray cluster is established, we exec
into one of the vLLM containers (any works) and start the vLLM server."*
Tensor parallelism runs within each node, pipeline parallelism between
nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..containers.image import ImageManifest, register_app
from ..containers.runtime import (Container, ContainerApp, ContainerContext,
                                  ContainerRuntime, RunOpts)
from ..errors import ConfigurationError, ContainerCrash
from ..hardware.node import Node
from ..models.catalog import ModelCard
from ..models.weights import validate_fit
from ..net.http import HttpService
from ..rayclu import RayCluster
from ..simkernel import Event
from .config import EngineArgs
from .engine import LLMEngine
from .perf import PerfModel, PerfProfile
from .server import ENGINE_INIT_SECONDS, VllmOpenAIServer

if TYPE_CHECKING:  # pragma: no cover
    from ..simkernel import SimKernel
    from ..storage.mounts import MountHandle


@register_app("ray-node")
class RayNodeApp(ContainerApp):
    """The per-node vLLM container whose entrypoint starts Ray
    (``run-cluster.sh --head|--worker`` in paper Figure 11)."""

    def startup(self, ctx: ContainerContext):
        ctx.check_expectations()
        cluster: RayCluster = ctx.opts.extras["ray_cluster"]
        role = ctx.env.get("RAY_ROLE", "worker")
        if role == "head":
            yield from cluster.start_head(ctx.node)
        else:
            yield from cluster.join_worker(ctx.node)

    def run(self, ctx: ContainerContext):
        yield ctx.stop_event


@dataclass
class MultiNodeDeployment:
    """A running multi-node vLLM service."""

    engine: LLMEngine
    ray: RayCluster
    containers: list[Container]
    head_node: Node
    service: HttpService | None = None
    failed: Event | None = None

    @property
    def endpoint(self) -> tuple[str, int]:
        return (self.head_node.hostname, self.engine.args.port)

    def stop(self) -> None:
        self.engine.stop()
        if self.service is not None:
            self.service.close()
            self.service = None
        for container in self.containers:
            if container.running:
                container.stop()
        self.ray.shutdown()


class MultiNodeEngineLauncher:
    """Brings up Ray + a TP x PP engine over a node allocation."""

    def __init__(self, kernel: SimKernel, fabric, runtime: ContainerRuntime,
                 image: ImageManifest | str, card: ModelCard,
                 args: EngineArgs, model_mount: MountHandle,
                 profile: PerfProfile | None = None,
                 fault_plan=None):
        if args.pipeline_parallel_size < 2:
            raise ConfigurationError(
                "use the single-node server for pipeline_parallel_size=1")
        self.kernel = kernel
        self.fabric = fabric
        self.runtime = runtime
        self.image = image
        self.card = card
        self.args = args
        self.model_mount = model_mount
        self.profile = profile or PerfProfile()
        self.fault_plan = fault_plan

    def launch(self, nodes: list[Node]):
        """Generator: returns a ready :class:`MultiNodeDeployment`."""
        args = self.args
        if len(nodes) != args.pipeline_parallel_size:
            raise ConfigurationError(
                f"pipeline_parallel_size={args.pipeline_parallel_size} "
                f"needs exactly that many nodes, got {len(nodes)}")
        kernel = self.kernel
        ray = RayCluster(kernel)

        # One vLLM container per node; entrypoint = Ray bootstrap.
        containers: list[Container] = []
        for i, node in enumerate(nodes):
            opts = RunOpts(
                name=f"vllm-ray-{node.hostname}",
                env={"RAY_ROLE": "head" if i == 0 else "worker",
                     "HF_HUB_OFFLINE": "1", "TRANSFORMERS_OFFLINE": "1",
                     "HF_DATASETS_OFFLINE": "1"},
                network_host=True, ipc_host=True, gpus="all",
                apptainer_fakeroot=True, apptainer_writable_tmpfs=True,
                apptainer_cleanenv=True, apptainer_no_home=True,
                apptainer_nv=True,
                entrypoint="run-cluster.sh",
                extras={"ray_cluster": ray, "app_override": "ray-node"},
            )
            container = yield from self.runtime.run(node, self.image, opts)
            containers.append(container)
        for container in containers:
            yield container.ready
        yield from ray.wait_for_size(len(nodes))

        # vLLM allocates GPU bundles through Ray placement groups.
        ray.create_placement_group(
            gpus_per_bundle=args.tensor_parallel_size,
            n_bundles=args.pipeline_parallel_size)

        head = nodes[0]
        gpu = head.spec.gpus[0]
        kv_capacity = validate_fit(
            self.card, gpu, args.tensor_parallel_size,
            args.pipeline_parallel_size, max_model_len=args.max_model_len,
            gpu_memory_utilization=args.gpu_memory_utilization)

        # Every pipeline stage loads its weight shard in parallel.
        shard = self.card.weight_bytes / args.pipeline_parallel_size
        loaders = [
            kernel.spawn(self.model_mount.read_bytes(n.hostname, int(shard)),
                         name=f"shard:{n.hostname}")
            for n in nodes]
        yield kernel.all_of(loaders)
        # Deserialize + upload to HBM (each node processes its shard).
        from .server import WEIGHT_LOAD_RATE_PER_NODE
        yield kernel.timeout(shard / WEIGHT_LOAD_RATE_PER_NODE)
        yield kernel.timeout(ENGINE_INIT_SECONDS)

        perf = PerfModel(self.card, gpu, args.tensor_parallel_size,
                         args.pipeline_parallel_size, profile=self.profile)
        engine = LLMEngine(kernel, self.card, perf, args, kv_capacity,
                           fault_plan=self.fault_plan,
                           name=f"{head.hostname}-multinode")
        deployment = MultiNodeDeployment(engine=engine, ray=ray,
                                         containers=containers,
                                         head_node=head)
        deployment.failed = kernel.event()

        # Bind the OpenAI API on the head node, reusing the single-node
        # server's HTTP handlers.
        front = VllmOpenAIServer()
        front.engine = engine
        front.args = args
        deployment.service = HttpService(
            self.fabric, head.hostname, args.port, front._handle,
            name=f"vllm-multinode@{head.hostname}")

        engine_proc = engine.start()

        def watch(env):
            try:
                yield engine_proc
            except ContainerCrash as crash:
                if deployment.failed is not None and \
                        not deployment.failed.triggered:
                    deployment.failed.succeed(crash)
                for container in containers:
                    if container.running:
                        container.stop()
                env.trace.emit("vllm.multinode.crash",
                               head=head.hostname, reason=str(crash))

        kernel.spawn(watch(kernel), name="multinode-watch")
        kernel.trace.emit("vllm.multinode.ready", head=head.hostname,
                          nodes=[n.hostname for n in nodes],
                          tp=args.tensor_parallel_size,
                          pp=args.pipeline_parallel_size)
        return deployment
