"""The typed request surface of the engine.

:class:`RequestSpec` replaces the positional/kwarg list that
``LLMEngine.submit(prompt_tokens, max_new_tokens, session_key=...)``
had been accreting — one frozen, validated object instead of a
signature that grew a parameter per feature.  Specs validate at
construction, so a bad request fails where it is built (the HTTP
handler, a test) rather than deep inside the engine loop.

The legacy positional form still works for one release and emits a
:class:`DeprecationWarning`; see ``LLMEngine.submit``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError

__all__ = ["RequestSpec"]


@dataclass(frozen=True)
class RequestSpec:
    """Everything the engine needs to know about one generation request.

    ``session_key`` names the request's append-only token stream (one
    per conversation) for prefix caching; ``priority`` orders admission
    under the ``priority`` scheduler policy (higher runs first, 0 is
    the default class); ``trace_id``/``trace_parent`` join the request
    to an observability trace opened upstream.

    ``prefill_done`` marks a disaggregated *decode leg*: the prompt was
    prefilled on another engine and ``tokens_generated`` tokens (the
    handoff's first token) already exist, so admission charges no
    prefill compute and the request decodes from its arrival context.
    A preemption revokes this — the KV blocks are gone, so recompute
    prefills locally like any other request.
    """

    prompt_tokens: int
    max_new_tokens: int
    session_key: str | None = None
    priority: int = 0
    trace_id: int = 0
    trace_parent: int = 0
    prefill_done: bool = False
    tokens_generated: int = 0

    def __post_init__(self):
        if self.prompt_tokens < 1 or self.max_new_tokens < 1:
            raise ConfigurationError(
                "prompt_tokens and max_new_tokens must be positive, got "
                f"{self.prompt_tokens}+{self.max_new_tokens}")
        if self.tokens_generated and not self.prefill_done:
            raise ConfigurationError(
                "tokens_generated requires prefill_done=True (it describes "
                "a disaggregated handoff)")
        if self.prefill_done and self.tokens_generated < 1:
            raise ConfigurationError(
                "a prefill_done spec must carry at least the handoff's "
                "first token (tokens_generated >= 1)")
        if self.tokens_generated > self.max_new_tokens:
            raise ConfigurationError(
                f"tokens_generated={self.tokens_generated} exceeds "
                f"max_new_tokens={self.max_new_tokens}")
