"""The continuous-batching engine loop.

Mechanics mirror vLLM's scheduler at the fidelity that matters for the
paper's curves: FCFS admission from a waiting queue while KV blocks are
available, one token per running sequence per iteration, LIFO
recompute-preemption when the cache fills, and iteration times from the
calibrated :class:`~repro.vllm.perf.PerfModel`.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..errors import APIError, ContainerCrash
from ..models.catalog import ModelCard
from ..obs.profile import profiler
from ..simkernel import Event, Interrupted
from .config import EngineArgs
from .kvcache import BlockManager
from .perf import PerfModel

if TYPE_CHECKING:  # pragma: no cover
    from ..simkernel import SimKernel
    from .faults import FaultPlan


class EngineCrash(ContainerCrash):
    """The engine died (e.g. the memory-leak crash of Fig. 12 run 1)."""


@dataclass
class RequestStats:
    """Final accounting for one completed request."""

    prompt_tokens: int
    output_tokens: int
    ttft: float          # time to first token
    latency: float       # submit -> finish
    preemptions: int
    cached_tokens: int = 0   # prompt tokens served from the prefix cache

    @property
    def decode_rate(self) -> float:
        """Output tokens/second over the full request lifetime."""
        return self.output_tokens / self.latency if self.latency > 0 else 0.0


class Request:
    """One generation request inside the engine."""

    _ids = itertools.count(1)

    def __init__(self, kernel: "SimKernel", prompt_tokens: int,
                 max_new_tokens: int, session_key: str | None = None,
                 trace_id: int = 0, trace_parent: int = 0):
        self.id = next(Request._ids)
        self.prompt_tokens = prompt_tokens
        self.max_new_tokens = max_new_tokens
        self.session_key = session_key
        # Observability trace id (0 = untraced).  Distinct from ``id``:
        # ``_ids`` is process-global, so ``id`` values depend on how many
        # simulations shared this process and must never reach a digest.
        self.trace_id = trace_id
        self.trace_parent = trace_parent  # caller's span id in that trace
        self.cached_tokens = 0    # prefix-cache hit at latest admission
        self.submitted_at = kernel.now
        self.admitted_at: float | None = None
        self.first_token_at: float | None = None
        self.finished_at: float | None = None
        self.tokens_generated = 0
        self.preemptions = 0
        self.needs_prefill = True
        self.active = False       # currently in the running batch
        self.first_token: Event = kernel.event()
        self.done: Event = kernel.event()

    def stats(self) -> RequestStats:
        assert self.finished_at is not None and self.first_token_at is not None
        return RequestStats(
            prompt_tokens=self.prompt_tokens,
            output_tokens=self.tokens_generated,
            ttft=self.first_token_at - self.submitted_at,
            latency=self.finished_at - self.submitted_at,
            preemptions=self.preemptions,
            cached_tokens=self.cached_tokens,
        )

    @property
    def total_tokens(self) -> int:
        return self.prompt_tokens + self.tokens_generated


class LLMEngine:
    """Continuous-batching engine bound to a KV budget and a cost model."""

    def __init__(self, kernel: "SimKernel", card: ModelCard,
                 perf: PerfModel, args: EngineArgs,
                 kv_capacity_tokens: int,
                 fault_plan: "FaultPlan | None" = None,
                 name: str = "vllm"):
        self.kernel = kernel
        self.card = card
        self.perf = perf
        self.args = args
        self.name = name
        self.blocks = BlockManager(
            kv_capacity_tokens,
            prefix_caching=getattr(args, "enable_prefix_caching", False))
        self.waiting: deque[Request] = deque()
        self.running: list[Request] = []
        self.fault_plan = fault_plan
        self.completed: list[Request] = []
        self.total_output_tokens = 0
        self.total_requests = 0
        self.iterations = 0
        self.crashed: EngineCrash | None = None
        self._kv_tokens = 0       # running total of in-batch context tokens
        self._wake: Event | None = None       # idle engine, waiting for load
        self._jump_wake: Event | None = None  # coalesced decode in progress
        self._proc = None
        self._register_obs()

    def _register_obs(self) -> None:
        """Register this engine's slice of the kernel's metrics registry.

        Gauges are callback-backed (read at collection, never written in
        the loop); the latency/TTFT histograms are the only per-request
        observes and they fire once per *finish*, not per iteration.
        """
        self._obs = self.kernel.obs
        reg = self._obs.registry
        eng = {"engine": self.name}
        labels = ("engine",)
        reg.gauge("engine_requests_running",
                  "Sequences in the running batch", labels=labels) \
            .labels(**eng).set_function(lambda: len(self.running))
        reg.gauge("engine_requests_waiting",
                  "Requests queued for admission", labels=labels) \
            .labels(**eng).set_function(lambda: len(self.waiting))
        reg.gauge("engine_kv_cache_usage",
                  "Fraction of KV blocks in use", labels=labels) \
            .labels(**eng).set_function(
                lambda: self.blocks.used_blocks / self.blocks.total_blocks)
        reg.gauge("engine_iterations_total",
                  "Engine scheduler iterations", labels=labels) \
            .labels(**eng).set_function(lambda: self.iterations)
        reg.gauge("engine_requests_completed_total",
                  "Requests finished", labels=labels) \
            .labels(**eng).set_function(lambda: len(self.completed))
        reg.gauge("engine_generation_tokens_total",
                  "Output tokens generated", labels=labels) \
            .labels(**eng).set_function(lambda: self.total_output_tokens)
        self._h_latency = reg.histogram(
            "engine_request_latency_seconds",
            "Submit-to-finish latency", labels=labels).labels(**eng)
        self._h_ttft = reg.histogram(
            "engine_ttft_seconds",
            "Time to first token", labels=labels).labels(**eng)

    # -- public API -------------------------------------------------------------------

    @property
    def max_model_len(self) -> int:
        return self.args.max_model_len or self.card.max_context

    def submit(self, prompt_tokens: int, max_new_tokens: int,
               session_key: str | None = None,
               trace_id: int = 0, trace_parent: int = 0) -> Request:
        """Enqueue a request; returns it (wait on ``request.done``).

        ``session_key`` names the request's append-only token stream
        (one per conversation); with prefix caching enabled the engine
        reuses any cached blocks of that stream for the prompt and
        registers the full context back into the cache at finish.

        ``trace_id`` joins the request to an observability trace opened
        upstream (router/fleet); the engine then emits queue / prefill /
        decode phase spans for it at finish.
        """
        if self.crashed is not None:
            raise APIError(503, f"engine {self.name} has crashed")
        if prompt_tokens < 1 or max_new_tokens < 1:
            raise APIError(400, "prompt and max_tokens must be positive")
        if prompt_tokens + max_new_tokens > self.max_model_len:
            raise APIError(
                400, f"requested {prompt_tokens}+{max_new_tokens} tokens "
                     f"exceeds max_model_len={self.max_model_len}")
        request = Request(self.kernel, prompt_tokens, max_new_tokens,
                          session_key=session_key, trace_id=trace_id,
                          trace_parent=trace_parent)
        self.waiting.append(request)
        self.total_requests += 1
        if self._wake is not None and not self._wake.triggered:
            self._wake.succeed()
        self.nudge()
        return request

    def nudge(self) -> None:
        """Interrupt a coalesced decode sleep at the current instant.

        New arrivals (and live fault attachment) must be noticed at the
        next iteration *boundary*, exactly as in per-iteration stepping;
        a no-op unless a fast-forward sleep is in flight.
        """
        if self._jump_wake is not None and not self._jump_wake.triggered:
            self._jump_wake.succeed()

    def start(self):
        """Spawn the engine loop; returns the process."""
        self._proc = self.kernel.spawn(self._loop(), name=f"engine:{self.name}")
        return self._proc

    def stop(self) -> None:
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("engine stop")

    @property
    def kv_tokens_in_use(self) -> int:
        """Context tokens held by the running batch (O(1) counter)."""
        return self._kv_tokens

    def metrics(self) -> dict:
        """Prometheus-style snapshot (vLLM's /metrics equivalent)."""
        import numpy as np
        latencies = [r.stats().latency for r in self.completed[-500:]]
        return {
            "num_requests_running": len(self.running),
            "num_requests_waiting": len(self.waiting),
            "gpu_cache_usage_perc": round(
                self.blocks.used_blocks / self.blocks.total_blocks, 4),
            "num_requests_total": self.total_requests,
            "num_requests_completed": len(self.completed),
            "generation_tokens_total": self.total_output_tokens,
            "iterations_total": self.iterations,
            "num_preemptions_total": sum(
                r.preemptions for r in self.completed)
            + sum(r.preemptions for r in self.running),
            "prefix_cache": self.blocks.cache_stats(),
            "request_latency_p50": float(np.percentile(latencies, 50))
            if latencies else 0.0,
            "crashed": self.crashed is not None,
        }

    # -- engine loop -------------------------------------------------------------------

    def _loop(self):
        kernel = self.kernel
        try:
            while True:
                if not self.running and not self.waiting:
                    self._wake = kernel.event()
                    yield self._wake
                    self._wake = None
                self._check_faults()
                prefill_tokens = self._admit()
                if not self.running:
                    continue
                const, kv_coeff = self.perf.decode_coeffs(len(self.running))
                step = const + kv_coeff * self._kv_tokens
                if prefill_tokens:
                    step += self.perf.prefill_time(prefill_tokens)
                yield kernel.timeout(step)
                self.iterations += 1
                if profiler.enabled:
                    profiler.push("engine.advance")
                    try:
                        self._advance_all()
                    finally:
                        profiler.pop()
                else:
                    self._advance_all()
                if self.fault_plan is None and self.running:
                    yield from self._fast_forward()
        except Interrupted:
            self._fail_outstanding(APIError(503, "engine stopped"))
        except EngineCrash as crash:
            self.crashed = crash
            self._fail_outstanding(crash)
            raise

    # -- coalesced decode (the hot-path fast-forward) ----------------------------------

    #: Below this many provably-eventless iterations, per-iteration
    #: stepping is cheaper than planning a jump.
    MIN_JUMP = 4

    def _fast_forward(self):
        """Run many decode iterations under a single kernel sleep.

        Between iteration boundaries the batch can only change at a
        finish, a preemption, an admission, a first token, or a fault
        check — :meth:`_plan_jump` counts how many iterations are
        provably free of all five, and that whole stretch collapses into
        one timeout whose duration is the closed-form sum of the
        per-iteration costs (affine in KV tokens, which grow by
        ``batch`` per iteration).  A new arrival interrupts the sleep
        via :meth:`nudge`; the elapsed whole iterations are applied in
        bulk, the iteration in flight completes at normal granularity,
        and the main loop admits at the boundary — bit-for-bat the same
        token counts, TTFTs, and finish times as per-iteration stepping
        (timing differs only by float-sum rounding).  Disabled whenever
        a fault plan is armed: those contracts are per-iteration.
        """
        if profiler.enabled:
            profiler.push("engine.jump")
            try:
                j = self._plan_jump()
            finally:
                profiler.pop()
        else:
            j = self._plan_jump()
        if j < self.MIN_JUMP:
            return
        kernel = self.kernel
        batch = len(self.running)
        const, kv_coeff = self.perf.decode_coeffs(batch)
        per_iter = const + kv_coeff * self._kv_tokens
        kv_growth = kv_coeff * batch

        def cum(m: int) -> float:
            """Time for the first ``m`` jump iterations."""
            return m * per_iter + kv_growth * (m * (m - 1) * 0.5)

        self._jump_wake = kernel.event()
        sleep = kernel.timeout(cum(j))
        started = kernel.now
        try:
            yield kernel.any_of([self._jump_wake, sleep])
        finally:
            self._jump_wake = None
        if sleep.processed:
            self._apply_iterations(j)
            return
        # Nudged mid-sleep: bulk-apply the whole iterations already
        # elapsed, finish the one in flight at normal granularity, then
        # let the main loop admit at the boundary.
        elapsed = kernel.now - started
        m = self._completed_iterations(elapsed, cum, j)     # m < j
        self._apply_iterations(m)
        remainder = cum(m + 1) - elapsed
        if remainder > 0:
            yield kernel.timeout(remainder)
        self._apply_iterations(1)

    def _plan_jump(self) -> int:
        """Iterations guaranteed free of finishes, first tokens,
        admissions, and preemptions — eligible for one coalesced sleep.

        A *blocked* waiting queue cannot unblock mid-jump (free KV
        blocks only shrink between finishes and the batch-size cap only
        loosens at one) — but an *admissible* head must be admitted at
        this boundary, exactly as per-iteration stepping would: a
        request that arrived during the previous iteration's sleep had
        no jump wake to nudge, so it must not be slept past here.

        Prefix caching does not loosen this argument: admissibility
        (:meth:`_can_admit`) reads cached hits plus evictable blocks,
        and mid-jump neither can grow — registrations happen only at
        finishes (none in a jump) and appends only consume capacity.
        Evictable cached blocks *do* count toward the block-crossing
        budget below: evictions cost no simulated time and pop a
        deterministic LRU, so bulk-applied iterations evict exactly the
        blocks per-iteration stepping would.
        """
        running = self.running
        waiting = self.waiting
        if waiting and (len(running) < self.args.max_num_seqs
                        and self._can_admit(waiting[0])):
            return 0
        j = min(r.max_new_tokens - r.tokens_generated for r in running) - 1
        if j < 1:
            return 0
        for request in running:
            if request.needs_prefill:   # first token pending
                return 0
        blocks = self.blocks
        free = blocks.free_blocks + blocks.evictable_blocks
        bs = blocks.block_size
        # Worst case every sequence crosses a block edge once per ``bs``
        # iterations; bound j so the crossings cannot exhaust the free
        # blocks (which would mean a mid-jump preemption).
        counts = [0] * bs
        for request in running:
            counts[(request.total_tokens - 1) % bs] += 1

        def crossings(jj: int) -> int:
            return sum(c * ((s + jj) // bs)
                       for s, c in enumerate(counts) if c)

        if crossings(j) > free:
            lo, hi = 0, j
            while lo < hi:
                mid = (lo + hi + 1) // 2
                if crossings(mid) <= free:
                    lo = mid
                else:
                    hi = mid - 1
            j = lo
        return j

    @staticmethod
    def _completed_iterations(progress: float, cum, j: int) -> int:
        """Largest ``m < j`` with ``cum(m) <= progress`` (binary search)."""
        lo, hi = 0, j - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if cum(mid) <= progress:
                lo = mid
            else:
                hi = mid - 1
        return lo

    def _apply_iterations(self, m: int) -> None:
        """Bulk-apply ``m`` whole iterations planned by :meth:`_plan_jump`
        (no finishes, prefills, or preemptions occur within them)."""
        if m <= 0:
            return
        blocks = self.blocks
        for request in self.running:
            blocks.append_tokens(request.id, m)
            request.tokens_generated += m
        grown = m * len(self.running)
        self.total_output_tokens += grown
        self._kv_tokens += grown
        self.iterations += m

    # -- per-iteration stepping --------------------------------------------------------

    def _check_faults(self) -> None:
        if self.fault_plan is not None:
            self.fault_plan.check(self)

    def _can_admit(self, request: Request) -> bool:
        """The one admission predicate, shared by :meth:`_admit` and
        :meth:`_plan_jump`.

        This sharing is the coalescing guard: per-iteration stepping and
        the fast-forward planner must agree *exactly* on whether the
        waiting head is admissible (prefix-cache hits and evictable
        blocks included), or a jump could sleep past an admission the
        stepwise engine would have made — breaking bit-identity.
        """
        return self.blocks.can_allocate(request.total_tokens,
                                        prefix_key=request.session_key)

    def _admit(self) -> int:
        """FCFS admission while KV blocks allow; returns prefill tokens.

        With prefix caching, tokens covered by cached blocks are
        excluded from the returned prefill cost — the engine skips that
        compute entirely, which is the TTFT win of a warm conversation.
        """
        prefill = 0
        while self.waiting and len(self.running) < self.args.max_num_seqs:
            nxt = self.waiting[0]
            needed = nxt.total_tokens  # includes recompute after preemption
            if not self._can_admit(nxt):
                break
            self.waiting.popleft()
            if nxt.admitted_at is None:   # keep first admission on recompute
                nxt.admitted_at = self.kernel.now
            cached = self.blocks.allocate(nxt.id, needed,
                                          prefix_key=nxt.session_key)
            nxt.cached_tokens = cached
            nxt.needs_prefill = True
            nxt.active = True
            prefill += needed - cached
            self.running.append(nxt)
            self._kv_tokens += needed
        return prefill

    def _advance_all(self) -> None:
        now = self.kernel.now
        running = self.running
        finished: list[Request] = []
        if self.blocks.free_blocks >= len(running):
            # Fast path: every sequence can take a token even if each
            # one crosses a block edge — no preemption is possible, so
            # no batch copy and no per-request membership checks.
            advanced = len(running)
            for request in running:
                self.blocks.append_token(request.id)
                request.tokens_generated += 1
                if request.needs_prefill:
                    request.needs_prefill = False
                    if request.first_token_at is None:
                        request.first_token_at = now
                        request.first_token.succeed(now)
                if request.tokens_generated >= request.max_new_tokens:
                    finished.append(request)
        else:
            advanced = 0
            for request in list(running):
                if not request.active:
                    continue  # got preempted while advancing others
                if not self._ensure_appendable(request):
                    # Cache completely full with this sequence alone: cap it.
                    finished.append(request)
                    continue
                if not request.active:
                    continue
                self.blocks.append_token(request.id)
                request.tokens_generated += 1
                advanced += 1
                if request.needs_prefill:
                    request.needs_prefill = False
                    if request.first_token_at is None:
                        request.first_token_at = now
                        request.first_token.succeed(now)
                if request.tokens_generated >= request.max_new_tokens:
                    finished.append(request)
        self.total_output_tokens += advanced
        self._kv_tokens += advanced
        for request in finished:
            running.remove(request)
            request.active = False
            # A finished conversation turn donates its full-context
            # blocks to the prefix cache (zero-ref residents) so the
            # next turn's prompt — prior context + new user text —
            # prefills only the tail.
            self.blocks.free(request.id, register_key=request.session_key)
            self._kv_tokens -= request.total_tokens
            request.finished_at = now
            if request.first_token_at is None:
                request.first_token_at = now
                request.first_token.succeed(now)
            self.completed.append(request)
            if self._obs.registry.enabled:
                self._h_latency.observe(now - request.submitted_at)
                self._h_ttft.observe(request.first_token_at
                                     - request.submitted_at)
            if request.trace_id and self._obs.spans.enabled:
                self._emit_request_spans(request, now)
            request.done.succeed(request)

    def _emit_request_spans(self, request: Request, now: float) -> None:
        """Derive queue/prefill/decode phase spans at finish.

        Bounds come from timestamps the engine records anyway, so
        tracing adds no per-iteration work: the whole span tree for a
        request is three records written once, at completion.
        """
        spans = self._obs.spans
        tid = request.trace_id
        parent = request.trace_parent or None
        admitted = (request.admitted_at if request.admitted_at is not None
                    else request.submitted_at)
        first = (request.first_token_at if request.first_token_at is not None
                 else admitted)
        spans.emit_many(tid, parent, (
            ("queue", request.submitted_at, admitted, None),
            ("prefill", admitted, first,
             {"engine": self.name,
              "prompt_tokens": request.prompt_tokens,
              "cached_tokens": request.cached_tokens}),
            ("decode", first, now,
             {"output_tokens": request.tokens_generated,
              "preemptions": request.preemptions})))

    def _ensure_appendable(self, request: Request) -> bool:
        """Preempt (LIFO, recompute-style) until ``request`` can grow.
        Returns False if the cache is full with no preemptable victim."""
        while not self.blocks.can_append(request.id):
            victim = None
            for candidate in reversed(self.running):
                if candidate is not request:
                    victim = candidate
                    break
            if victim is None:
                return False
            self._preempt(victim)
        return True

    def _preempt(self, victim: Request) -> None:
        self.running.remove(victim)
        victim.active = False
        self.blocks.free(victim.id)
        self._kv_tokens -= victim.total_tokens
        victim.preemptions += 1
        victim.needs_prefill = True  # recompute on readmission
        self.waiting.appendleft(victim)
        self.kernel.trace.emit("vllm.preempt", engine=self.name,
                               request=victim.id)

    def _fail_outstanding(self, exc: Exception) -> None:
        for request in list(self.running) + list(self.waiting):
            if not request.done.triggered:
                request.done.fail(exc)
        for request in self.running:
            request.active = False
            if self.blocks.holds(request.id):
                self.blocks.free(request.id)
        self.running.clear()
        self.waiting.clear()
        self._kv_tokens = 0
