"""The continuous-batching engine loop.

Mechanics mirror vLLM's scheduler at the fidelity that matters for the
paper's curves: FCFS admission from a waiting queue while KV blocks are
available, one token per running sequence per iteration, LIFO
recompute-preemption when the cache fills, and iteration times from the
calibrated :class:`~repro.vllm.perf.PerfModel`.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..errors import APIError, ContainerCrash
from ..models.catalog import ModelCard
from ..simkernel import Event, Interrupted
from .config import EngineArgs
from .kvcache import BlockManager
from .perf import PerfModel

if TYPE_CHECKING:  # pragma: no cover
    from ..simkernel import SimKernel
    from .faults import FaultPlan


class EngineCrash(ContainerCrash):
    """The engine died (e.g. the memory-leak crash of Fig. 12 run 1)."""


@dataclass
class RequestStats:
    """Final accounting for one completed request."""

    prompt_tokens: int
    output_tokens: int
    ttft: float          # time to first token
    latency: float       # submit -> finish
    preemptions: int

    @property
    def decode_rate(self) -> float:
        """Output tokens/second over the full request lifetime."""
        return self.output_tokens / self.latency if self.latency > 0 else 0.0


class Request:
    """One generation request inside the engine."""

    _ids = itertools.count(1)

    def __init__(self, kernel: "SimKernel", prompt_tokens: int,
                 max_new_tokens: int):
        self.id = next(Request._ids)
        self.prompt_tokens = prompt_tokens
        self.max_new_tokens = max_new_tokens
        self.submitted_at = kernel.now
        self.first_token_at: float | None = None
        self.finished_at: float | None = None
        self.tokens_generated = 0
        self.preemptions = 0
        self.needs_prefill = True
        self.first_token: Event = kernel.event()
        self.done: Event = kernel.event()

    def stats(self) -> RequestStats:
        assert self.finished_at is not None and self.first_token_at is not None
        return RequestStats(
            prompt_tokens=self.prompt_tokens,
            output_tokens=self.tokens_generated,
            ttft=self.first_token_at - self.submitted_at,
            latency=self.finished_at - self.submitted_at,
            preemptions=self.preemptions,
        )

    @property
    def total_tokens(self) -> int:
        return self.prompt_tokens + self.tokens_generated


class LLMEngine:
    """Continuous-batching engine bound to a KV budget and a cost model."""

    def __init__(self, kernel: "SimKernel", card: ModelCard,
                 perf: PerfModel, args: EngineArgs,
                 kv_capacity_tokens: int,
                 fault_plan: "FaultPlan | None" = None,
                 name: str = "vllm"):
        self.kernel = kernel
        self.card = card
        self.perf = perf
        self.args = args
        self.name = name
        self.blocks = BlockManager(kv_capacity_tokens)
        self.waiting: deque[Request] = deque()
        self.running: list[Request] = []
        self.fault_plan = fault_plan
        self.completed: list[Request] = []
        self.total_output_tokens = 0
        self.total_requests = 0
        self.iterations = 0
        self.crashed: EngineCrash | None = None
        self._wake: Event | None = None
        self._proc = None

    # -- public API -------------------------------------------------------------------

    @property
    def max_model_len(self) -> int:
        return self.args.max_model_len or self.card.max_context

    def submit(self, prompt_tokens: int, max_new_tokens: int) -> Request:
        """Enqueue a request; returns it (wait on ``request.done``)."""
        if self.crashed is not None:
            raise APIError(503, f"engine {self.name} has crashed")
        if prompt_tokens < 1 or max_new_tokens < 1:
            raise APIError(400, "prompt and max_tokens must be positive")
        if prompt_tokens + max_new_tokens > self.max_model_len:
            raise APIError(
                400, f"requested {prompt_tokens}+{max_new_tokens} tokens "
                     f"exceeds max_model_len={self.max_model_len}")
        request = Request(self.kernel, prompt_tokens, max_new_tokens)
        self.waiting.append(request)
        self.total_requests += 1
        if self._wake is not None and not self._wake.triggered:
            self._wake.succeed()
        return request

    def start(self):
        """Spawn the engine loop; returns the process."""
        self._proc = self.kernel.spawn(self._loop(), name=f"engine:{self.name}")
        return self._proc

    def stop(self) -> None:
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("engine stop")

    @property
    def kv_tokens_in_use(self) -> int:
        return sum(r.total_tokens for r in self.running)

    def metrics(self) -> dict:
        """Prometheus-style snapshot (vLLM's /metrics equivalent)."""
        import numpy as np
        latencies = [r.stats().latency for r in self.completed[-500:]]
        return {
            "num_requests_running": len(self.running),
            "num_requests_waiting": len(self.waiting),
            "gpu_cache_usage_perc": round(
                self.blocks.used_blocks / self.blocks.total_blocks, 4),
            "num_requests_total": self.total_requests,
            "num_requests_completed": len(self.completed),
            "generation_tokens_total": self.total_output_tokens,
            "iterations_total": self.iterations,
            "num_preemptions_total": sum(
                r.preemptions for r in self.completed)
            + sum(r.preemptions for r in self.running),
            "request_latency_p50": float(np.percentile(latencies, 50))
            if latencies else 0.0,
            "crashed": self.crashed is not None,
        }

    # -- engine loop -------------------------------------------------------------------

    def _loop(self):
        try:
            while True:
                if not self.running and not self.waiting:
                    self._wake = self.kernel.event()
                    yield self._wake
                    self._wake = None
                self._check_faults()
                prefill_tokens = self._admit()
                if not self.running:
                    continue
                batch = len(self.running)
                step = self.perf.decode_iteration_time(
                    batch, self.kv_tokens_in_use)
                if prefill_tokens:
                    step += self.perf.prefill_time(prefill_tokens)
                yield self.kernel.timeout(step)
                self.iterations += 1
                self._advance_all()
        except Interrupted:
            self._fail_outstanding(APIError(503, "engine stopped"))
        except EngineCrash as crash:
            self.crashed = crash
            self._fail_outstanding(crash)
            raise

    def _check_faults(self) -> None:
        if self.fault_plan is not None:
            self.fault_plan.check(self)

    def _admit(self) -> int:
        """FCFS admission while KV blocks allow; returns prefill tokens."""
        prefill = 0
        while self.waiting and len(self.running) < self.args.max_num_seqs:
            nxt = self.waiting[0]
            needed = nxt.total_tokens  # includes recompute after preemption
            if not self.blocks.can_allocate(needed):
                break
            self.waiting.popleft()
            self.blocks.allocate(nxt.id, needed)
            nxt.needs_prefill = True
            prefill += needed
            self.running.append(nxt)
        return prefill

    def _advance_all(self) -> None:
        now = self.kernel.now
        finished: list[Request] = []
        for request in list(self.running):
            if request not in self.running:
                continue  # got preempted while advancing others
            if not self._ensure_appendable(request):
                # Cache completely full with this sequence alone: cap it.
                finished.append(request)
                continue
            if request not in self.running:
                continue
            self.blocks.append_token(request.id)
            request.tokens_generated += 1
            self.total_output_tokens += 1
            if request.needs_prefill:
                request.needs_prefill = False
                if request.first_token_at is None:
                    request.first_token_at = now
                    request.first_token.succeed(now)
            if request.tokens_generated >= request.max_new_tokens:
                finished.append(request)
        for request in finished:
            self.running.remove(request)
            self.blocks.free(request.id)
            request.finished_at = now
            if request.first_token_at is None:
                request.first_token_at = now
                request.first_token.succeed(now)
            self.completed.append(request)
            request.done.succeed(request)

    def _ensure_appendable(self, request: Request) -> bool:
        """Preempt (LIFO, recompute-style) until ``request`` can grow.
        Returns False if the cache is full with no preemptable victim."""
        while not self.blocks.can_append(request.id):
            victim = None
            for candidate in reversed(self.running):
                if candidate is not request:
                    victim = candidate
                    break
            if victim is None:
                return False
            self._preempt(victim)
        return True

    def _preempt(self, victim: Request) -> None:
        self.running.remove(victim)
        self.blocks.free(victim.id)
        victim.preemptions += 1
        victim.needs_prefill = True  # recompute on readmission
        self.waiting.appendleft(victim)
        self.kernel.trace.emit("vllm.preempt", engine=self.name,
                               request=victim.id)

    def _fail_outstanding(self, exc: Exception) -> None:
        for request in list(self.running) + list(self.waiting):
            if not request.done.triggered:
                request.done.fail(exc)
        for request in self.running:
            if self.blocks.holds(request.id):
                self.blocks.free(request.id)
        self.running.clear()
        self.waiting.clear()
