"""The continuous-batching engine loop.

Mechanics mirror vLLM's scheduler at the fidelity that matters for the
paper's curves: admission from a waiting queue while KV blocks are
available, one token per running sequence per iteration, recompute-
preemption when the cache fills, and iteration times from the
calibrated :class:`~repro.vllm.perf.PerfModel`.  *Which* request is
admitted, preempted, or coalesced over is the
:class:`~repro.vllm.scheduler.Scheduler`'s decision — FCFS by default,
with priority and chunked-prefill policies selectable through
``EngineArgs.scheduler_policy``.

An engine also carries a *disaggregation role* (``EngineArgs.
disagg_role``): ``unified`` (default) serves whole requests; a
``prefill`` engine runs requests only to their first token so a
``decode`` engine can continue them from a KV handoff
(:class:`~repro.vllm.spec.RequestSpec` with ``prefill_done=True``).
The role changes nothing in this loop — handoff requests simply enter
admission with their prefill already paid for.
"""

from __future__ import annotations

import itertools
import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..errors import APIError, ContainerCrash
from ..models.catalog import ModelCard
from ..obs.profile import profiler
from ..simkernel import Event, Interrupted
from .config import EngineArgs
from .kvcache import BlockManager
from .perf import PerfModel
from .scheduler import Scheduler, make_policy
from .spec import RequestSpec

if TYPE_CHECKING:  # pragma: no cover
    from ..simkernel import SimKernel
    from .faults import FaultPlan


class EngineCrash(ContainerCrash):
    """The engine died (e.g. the memory-leak crash of Fig. 12 run 1)."""


@dataclass
class RequestStats:
    """Final accounting for one completed request."""

    prompt_tokens: int
    output_tokens: int
    ttft: float          # time to first token
    latency: float       # submit -> finish
    preemptions: int
    cached_tokens: int = 0   # prompt tokens served from the prefix cache

    @property
    def decode_rate(self) -> float:
        """Output tokens/second over the full request lifetime."""
        return self.output_tokens / self.latency if self.latency > 0 else 0.0


class Request:
    """One generation request inside the engine."""

    _ids = itertools.count(1)

    def __init__(self, kernel: SimKernel, spec: RequestSpec):
        self.id = next(Request._ids)
        self.spec = spec
        self.prompt_tokens = spec.prompt_tokens
        self.max_new_tokens = spec.max_new_tokens
        self.session_key = spec.session_key
        self.priority = spec.priority
        # Observability trace id (0 = untraced).  Distinct from ``id``:
        # ``_ids`` is process-global, so ``id`` values depend on how many
        # simulations shared this process and must never reach a digest.
        self.trace_id = spec.trace_id
        self.trace_parent = spec.trace_parent  # caller's span id in that trace
        self.cached_tokens = 0    # prefix-cache hit at latest admission
        self.submitted_at = kernel.now
        self.admitted_at: float | None = None
        self.first_token_at: float | None = None
        self.finished_at: float | None = None
        self.preemptions = 0
        self.active = False       # currently in the running batch
        self.prefill_remaining = 0  # chunked-prefill tokens still unpaid
        self.first_token: Event = kernel.event()
        self.done: Event = kernel.event()
        if spec.prefill_done:
            # Disaggregated decode leg: the prompt (and the handoff's
            # first token) were computed on a prefill engine; this
            # engine starts from that context.  The first-token event
            # resolves immediately — it fired on the other engine.
            self.tokens_generated = spec.tokens_generated
            self.needs_prefill = False
            self.prefill_done = True
            self.first_token_at = kernel.now
            self.first_token.succeed(kernel.now)
        else:
            self.tokens_generated = 0
            self.needs_prefill = True
            self.prefill_done = False

    def stats(self) -> RequestStats:
        assert self.finished_at is not None and self.first_token_at is not None
        return RequestStats(
            prompt_tokens=self.prompt_tokens,
            output_tokens=self.tokens_generated,
            ttft=self.first_token_at - self.submitted_at,
            latency=self.finished_at - self.submitted_at,
            preemptions=self.preemptions,
            cached_tokens=self.cached_tokens,
        )

    @property
    def total_tokens(self) -> int:
        return self.prompt_tokens + self.tokens_generated


class LLMEngine:
    """Continuous-batching engine bound to a KV budget and a cost model."""

    def __init__(self, kernel: SimKernel, card: ModelCard,
                 perf: PerfModel, args: EngineArgs,
                 kv_capacity_tokens: int,
                 fault_plan: FaultPlan | None = None,
                 name: str = "vllm"):
        self.kernel = kernel
        self.card = card
        self.perf = perf
        self.args = args
        self.name = name
        self.blocks = BlockManager(
            kv_capacity_tokens,
            prefix_caching=getattr(args, "enable_prefix_caching", False))
        self.scheduler = Scheduler(
            self, make_policy(getattr(args, "scheduler_policy", "fcfs"),
                              chunk_tokens=getattr(args, "chunk_tokens",
                                                   512)))
        self.fault_plan = fault_plan
        self.completed: list[Request] = []
        self.total_output_tokens = 0
        self.total_requests = 0
        self.iterations = 0
        self.crashed: EngineCrash | None = None
        self._kv_tokens = 0       # running total of in-batch context tokens
        self._wake: Event | None = None       # idle engine, waiting for load
        self._jump_wake: Event | None = None  # coalesced decode in progress
        self._proc = None
        self._register_obs()

    # -- queue views (storage lives on the Scheduler) ----------------------------------

    @property
    def waiting(self):
        """The scheduler's waiting queue (the same deque object)."""
        return self.scheduler.waiting

    @property
    def running(self):
        """The scheduler's running batch (the same list object)."""
        return self.scheduler.running

    def _register_obs(self) -> None:
        """Register this engine's slice of the kernel's metrics registry.

        Gauges are callback-backed (read at collection, never written in
        the loop); the latency/TTFT histograms are the only per-request
        observes and they fire once per *finish*, not per iteration.
        """
        self._obs = self.kernel.obs
        reg = self._obs.registry
        eng = {"engine": self.name}
        labels = ("engine",)
        reg.gauge("engine_requests_running",
                  "Sequences in the running batch", labels=labels) \
            .labels(**eng).set_function(lambda: len(self.running))
        reg.gauge("engine_requests_waiting",
                  "Requests queued for admission", labels=labels) \
            .labels(**eng).set_function(lambda: len(self.waiting))
        reg.gauge("engine_kv_cache_usage",
                  "Fraction of KV blocks in use", labels=labels) \
            .labels(**eng).set_function(
                lambda: self.blocks.used_blocks / self.blocks.total_blocks)
        reg.gauge("engine_iterations_total",
                  "Engine scheduler iterations", labels=labels) \
            .labels(**eng).set_function(lambda: self.iterations)
        reg.gauge("engine_requests_completed_total",
                  "Requests finished", labels=labels) \
            .labels(**eng).set_function(lambda: len(self.completed))
        reg.gauge("engine_generation_tokens_total",
                  "Output tokens generated", labels=labels) \
            .labels(**eng).set_function(lambda: self.total_output_tokens)
        self._h_latency = reg.histogram(
            "engine_request_latency_seconds",
            "Submit-to-finish latency", labels=labels).labels(**eng)
        self._h_ttft = reg.histogram(
            "engine_ttft_seconds",
            "Time to first token", labels=labels).labels(**eng)

    # -- public API -------------------------------------------------------------------

    @property
    def max_model_len(self) -> int:
        return self.args.max_model_len or self.card.max_context

    def submit(self, spec: RequestSpec | int | None = None,
               max_new_tokens: int | None = None,
               session_key: str | None = None,
               trace_id: int = 0, trace_parent: int = 0, *,
               prompt_tokens: int | None = None) -> Request:
        """Enqueue a request; returns it (wait on ``request.done``).

        The argument is a :class:`~repro.vllm.spec.RequestSpec`.  The
        legacy form ``submit(prompt_tokens, max_new_tokens,
        session_key=..., trace_id=..., trace_parent=...)`` (positional
        or keyword) still works for one release and emits a
        :class:`DeprecationWarning`.
        """
        if prompt_tokens is not None:   # legacy keyword spelling
            spec = prompt_tokens
        if not isinstance(spec, RequestSpec):
            warnings.warn(
                "LLMEngine.submit(prompt_tokens, max_new_tokens, ...) is "
                "deprecated; pass a RequestSpec instead",
                DeprecationWarning, stacklevel=2)
            if spec is None or max_new_tokens is None \
                    or int(spec) < 1 or int(max_new_tokens) < 1:
                raise APIError(400, "prompt and max_tokens must be positive")
            spec = RequestSpec(prompt_tokens=int(spec),
                               max_new_tokens=int(max_new_tokens),
                               session_key=session_key, trace_id=trace_id,
                               trace_parent=trace_parent)
        if self.crashed is not None:
            raise APIError(503, f"engine {self.name} has crashed")
        if spec.prompt_tokens + spec.max_new_tokens > self.max_model_len:
            raise APIError(
                400, f"requested {spec.prompt_tokens}+{spec.max_new_tokens} "
                     f"tokens exceeds max_model_len={self.max_model_len}")
        request = Request(self.kernel, spec)
        self.scheduler.enqueue(request)
        self.total_requests += 1
        if self._wake is not None and not self._wake.triggered:
            self._wake.succeed()
        self.nudge()
        return request

    def nudge(self) -> None:
        """Interrupt a coalesced decode sleep at the current instant.

        New arrivals (and live fault attachment) must be noticed at the
        next iteration *boundary*, exactly as in per-iteration stepping;
        a no-op unless a fast-forward sleep is in flight.
        """
        if self._jump_wake is not None and not self._jump_wake.triggered:
            self._jump_wake.succeed()

    def start(self):
        """Spawn the engine loop; returns the process."""
        self._proc = self.kernel.spawn(self._loop(), name=f"engine:{self.name}")
        return self._proc

    def stop(self) -> None:
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("engine stop")

    @property
    def kv_tokens_in_use(self) -> int:
        """Context tokens held by the running batch (O(1) counter)."""
        return self._kv_tokens

    def metrics(self) -> dict:
        """Prometheus-style snapshot (vLLM's /metrics equivalent)."""
        import numpy as np
        latencies = [r.stats().latency for r in self.completed[-500:]]
        return {
            "num_requests_running": len(self.running),
            "num_requests_waiting": len(self.waiting),
            "gpu_cache_usage_perc": round(
                self.blocks.used_blocks / self.blocks.total_blocks, 4),
            "num_requests_total": self.total_requests,
            "num_requests_completed": len(self.completed),
            "generation_tokens_total": self.total_output_tokens,
            "iterations_total": self.iterations,
            "num_preemptions_total": sum(
                r.preemptions for r in self.completed)
            + sum(r.preemptions for r in self.running),
            "prefix_cache": self.blocks.cache_stats(),
            "scheduler_policy": self.scheduler.policy.name,
            "request_latency_p50": float(np.percentile(latencies, 50))
            if latencies else 0.0,
            "crashed": self.crashed is not None,
        }

    # -- engine loop -------------------------------------------------------------------

    def _loop(self):
        kernel = self.kernel
        try:
            while True:
                if not self.running and not self.waiting:
                    self._wake = kernel.event()
                    yield self._wake
                    self._wake = None
                self._check_faults()
                prefill_tokens = self.scheduler.schedule()
                if not self.running:
                    continue
                const, kv_coeff = self.perf.decode_coeffs(len(self.running))
                step = const + kv_coeff * self._kv_tokens
                if prefill_tokens:
                    step += self.perf.prefill_time(prefill_tokens)
                yield kernel.timeout(step)
                self.iterations += 1
                if profiler.enabled:
                    profiler.push("engine.advance")
                    try:
                        self._advance_all()
                    finally:
                        profiler.pop()
                else:
                    self._advance_all()
                if (self.fault_plan is None and self.running
                        and self.scheduler.supports_coalescing):
                    yield from self._fast_forward()
        except Interrupted:
            self._fail_outstanding(APIError(503, "engine stopped"))
        except EngineCrash as crash:
            self.crashed = crash
            self._fail_outstanding(crash)
            raise

    # -- coalesced decode (the hot-path fast-forward) ----------------------------------

    #: Below this many provably-eventless iterations, per-iteration
    #: stepping is cheaper than planning a jump.
    MIN_JUMP = 4

    def _fast_forward(self):
        """Run many decode iterations under a single kernel sleep.

        Between iteration boundaries the batch can only change at a
        finish, a preemption, an admission, a first token, or a fault
        check — ``Scheduler.plan_jump`` counts how many iterations are
        provably free of all five, and that whole stretch collapses into
        one timeout whose duration is the closed-form sum of the
        per-iteration costs (affine in KV tokens, which grow by
        ``batch`` per iteration).  A new arrival interrupts the sleep
        via :meth:`nudge`; the elapsed whole iterations are applied in
        bulk, the iteration in flight completes at normal granularity,
        and the main loop admits at the boundary — bit-for-bat the same
        token counts, TTFTs, and finish times as per-iteration stepping
        (timing differs only by float-sum rounding).  Disabled whenever
        a fault plan is armed (those contracts are per-iteration) and
        under any scheduler policy but FCFS — the jump plan's proof
        obligations are FCFS-specific (see ``docs/serving.md``).
        """
        assert self.scheduler.supports_coalescing, \
            "coalescing is FCFS-only; the loop gate must keep other " \
            "policies out of the fast-forward"
        if profiler.enabled:
            profiler.push("engine.jump")
            try:
                j = self.scheduler.plan_jump()
            finally:
                profiler.pop()
        else:
            j = self.scheduler.plan_jump()
        if j < self.MIN_JUMP:
            return
        kernel = self.kernel
        batch = len(self.running)
        const, kv_coeff = self.perf.decode_coeffs(batch)
        per_iter = const + kv_coeff * self._kv_tokens
        kv_growth = kv_coeff * batch

        def cum(m: int) -> float:
            """Time for the first ``m`` jump iterations."""
            return m * per_iter + kv_growth * (m * (m - 1) * 0.5)

        self._jump_wake = kernel.event()
        sleep = kernel.timeout(cum(j))
        started = kernel.now
        try:
            yield kernel.any_of([self._jump_wake, sleep])
        finally:
            self._jump_wake = None
        if sleep.processed:
            self._apply_iterations(j)
            return
        # Nudged mid-sleep: bulk-apply the whole iterations already
        # elapsed, finish the one in flight at normal granularity, then
        # let the main loop admit at the boundary.
        elapsed = kernel.now - started
        m = self._completed_iterations(elapsed, cum, j)     # m < j
        self._apply_iterations(m)
        remainder = cum(m + 1) - elapsed
        if remainder > 0:
            yield kernel.timeout(remainder)
        self._apply_iterations(1)

    @staticmethod
    def _completed_iterations(progress: float, cum, j: int) -> int:
        """Largest ``m < j`` with ``cum(m) <= progress`` (binary search)."""
        lo, hi = 0, j - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if cum(mid) <= progress:
                lo = mid
            else:
                hi = mid - 1
        return lo

    def _apply_iterations(self, m: int) -> None:
        """Bulk-apply ``m`` whole iterations planned by the scheduler's
        jump plan (no finishes, prefills, or preemptions occur within
        them)."""
        if m <= 0:
            return
        blocks = self.blocks
        for request in self.running:
            blocks.append_tokens(request.id, m)
            request.tokens_generated += m
        grown = m * len(self.running)
        self.total_output_tokens += grown
        self._kv_tokens += grown
        self.iterations += m

    # -- per-iteration stepping --------------------------------------------------------

    def _check_faults(self) -> None:
        if self.fault_plan is not None:
            self.fault_plan.check(self)

    def _can_admit(self, request: Request) -> bool:
        """Deprecated alias for :meth:`Scheduler.can_admit` (the one
        admission predicate lives on the scheduler now)."""
        return self.scheduler.can_admit(request)

    def _advance_all(self) -> None:
        now = self.kernel.now
        running = self.running
        finished: list[Request] = []
        if self.blocks.free_blocks >= len(running):
            # Fast path: every sequence can take a token even if each
            # one crosses a block edge — no preemption is possible, so
            # no batch copy and no per-request membership checks.
            advanced = 0
            for request in running:
                if request.prefill_remaining > 0:
                    continue   # chunked prefill still paying; no token yet
                self.blocks.append_token(request.id)
                request.tokens_generated += 1
                advanced += 1
                if request.needs_prefill:
                    request.needs_prefill = False
                    if request.first_token_at is None:
                        request.first_token_at = now
                        request.first_token.succeed(now)
                if request.tokens_generated >= request.max_new_tokens:
                    finished.append(request)
        else:
            advanced = 0
            for request in list(running):
                if not request.active:
                    continue  # got preempted while advancing others
                if request.prefill_remaining > 0:
                    continue
                if not self._ensure_appendable(request):
                    # Cache completely full with this sequence alone: cap it.
                    finished.append(request)
                    continue
                if not request.active:
                    continue
                self.blocks.append_token(request.id)
                request.tokens_generated += 1
                advanced += 1
                if request.needs_prefill:
                    request.needs_prefill = False
                    if request.first_token_at is None:
                        request.first_token_at = now
                        request.first_token.succeed(now)
                if request.tokens_generated >= request.max_new_tokens:
                    finished.append(request)
        self.total_output_tokens += advanced
        self._kv_tokens += advanced
        for request in finished:
            running.remove(request)
            request.active = False
            # A finished conversation turn donates its full-context
            # blocks to the prefix cache (zero-ref residents) so the
            # next turn's prompt — prior context + new user text —
            # prefills only the tail.
            self.blocks.free(request.id, register_key=request.session_key)
            self._kv_tokens -= request.total_tokens
            request.finished_at = now
            if request.first_token_at is None:
                request.first_token_at = now
                request.first_token.succeed(now)
            self.completed.append(request)
            if self._obs.registry.enabled:
                self._h_latency.observe(now - request.submitted_at)
                self._h_ttft.observe(request.first_token_at
                                     - request.submitted_at)
            if request.trace_id and self._obs.spans.enabled:
                self._emit_request_spans(request, now)
            request.done.succeed(request)

    def _emit_request_spans(self, request: Request, now: float) -> None:
        """Derive queue/prefill/decode phase spans at finish.

        Bounds come from timestamps the engine records anyway, so
        tracing adds no per-iteration work: the whole span tree for a
        request is three records written once, at completion.
        """
        spans = self._obs.spans
        tid = request.trace_id
        parent = request.trace_parent or None
        admitted = (request.admitted_at if request.admitted_at is not None
                    else request.submitted_at)
        first = (request.first_token_at if request.first_token_at is not None
                 else admitted)
        spans.emit_many(tid, parent, (
            ("queue", request.submitted_at, admitted, None),
            ("prefill", admitted, first,
             {"engine": self.name,
              "prompt_tokens": request.prompt_tokens,
              "cached_tokens": request.cached_tokens}),
            ("decode", first, now,
             {"output_tokens": request.tokens_generated,
              "preemptions": request.preemptions})))

    def _ensure_appendable(self, request: Request) -> bool:
        """Preempt (recompute-style) until ``request`` can grow.
        Returns False if the cache is full with no preemptable victim."""
        while not self.blocks.can_append(request.id):
            victim = self.scheduler.victim(request)
            if victim is None:
                return False
            self._preempt(victim)
        return True

    def _preempt(self, victim: Request) -> None:
        self.running.remove(victim)
        victim.active = False
        self.blocks.free(victim.id)
        self._kv_tokens -= victim.total_tokens
        victim.preemptions += 1
        victim.needs_prefill = True  # recompute on readmission
        victim.prefill_done = False  # a handoff's KV is gone with the blocks
        self.scheduler.requeue(victim)
        self.kernel.trace.emit("vllm.preempt", engine=self.name,
                               request=victim.id)

    def _fail_outstanding(self, exc: Exception) -> None:
        for request in list(self.running) + list(self.waiting):
            if not request.done.triggered:
                request.done.fail(exc)
        for request in self.running:
            request.active = False
            if self.blocks.holds(request.id):
                self.blocks.free(request.id)
        self.running.clear()
        self.waiting.clear()
        self._kv_tokens = 0
