"""Kubernetes simulator.

A real reconciliation system in miniature: a versioned object store with
watches (:mod:`~repro.k8s.api`), a pod scheduler, a Deployment controller
with crash-loop backoff, per-node kubelets driving the CRI runtime, a PVC
binder, and an ingress controller that re-resolves backends per request —
which is how the paper's observation that "Kubernetes automatically takes
care of restarting the container and updating the ingress routes" emerges.

Helm (:mod:`~repro.k8s.helm`) renders the vLLM chart from a values dict
(paper Figure 6) into these objects.
"""

from .objects import (Deployment, Ingress, KContainerSpec, Namespace,
                      PersistentVolumeClaim, Pod, PodPhase, PodSpec,
                      ResourceQuota, Service)
from .api import ApiServer, WatchEvent
from .cluster import KubernetesCluster
from .helm import HelmRelease, render_vllm_chart
from . import kubectl

__all__ = [
    "ApiServer",
    "Deployment",
    "HelmRelease",
    "Ingress",
    "KContainerSpec",
    "KubernetesCluster",
    "Namespace",
    "PersistentVolumeClaim",
    "Pod",
    "PodPhase",
    "PodSpec",
    "ResourceQuota",
    "Service",
    "WatchEvent",
    "render_vllm_chart",
]
