"""Pod scheduler: resource-fit placement with namespace GPU quotas."""

from __future__ import annotations

from typing import TYPE_CHECKING

from .api import WatchEvent
from .objects import Pod, PodPhase, ResourceQuota

if TYPE_CHECKING:  # pragma: no cover
    from .cluster import KNode, KubernetesCluster


class PodScheduler:
    """Assigns pending pods to nodes.

    Placement: filter by node selector and free GPUs/memory (counting
    GPUs already *committed* to scheduled-but-not-yet-terminal pods), then
    spread across the least-committed node.  Namespace ResourceQuota GPU
    limits are enforced before placement.
    """

    def __init__(self, cluster: KubernetesCluster):
        self.cluster = cluster
        self.api = cluster.api
        self.api.watch("Pod", self._on_pod_event)
        self.api.watch("ResourceQuota", lambda ev: self._kick())

    def _on_pod_event(self, event: WatchEvent) -> None:
        self._kick()

    def _kick(self) -> None:
        for pod in self.api.list("Pod"):
            if (pod.phase is PodPhase.PENDING and pod.node_name is None
                    and not pod.deleted):
                self._try_schedule(pod)

    def _committed_gpus(self, node_name: str) -> int:
        return sum(
            p.spec.total_gpus for p in self.api.list("Pod")
            if p.node_name == node_name and not p.deleted
            and p.phase in (PodPhase.PENDING, PodPhase.RUNNING))

    def _namespace_gpus_in_use(self, namespace: str) -> int:
        return sum(
            p.spec.total_gpus for p in self.api.list("Pod", namespace)
            if not p.deleted and p.node_name is not None
            and p.phase in (PodPhase.PENDING, PodPhase.RUNNING))

    def _quota_allows(self, pod: Pod) -> bool:
        quotas: list[ResourceQuota] = self.api.list(
            "ResourceQuota", pod.meta.namespace)
        if not quotas:
            return True
        in_use = self._namespace_gpus_in_use(pod.meta.namespace)
        limit = min(q.gpu_limit for q in quotas)
        return in_use + pod.spec.total_gpus <= limit

    def _try_schedule(self, pod: Pod) -> None:
        if not self._quota_allows(pod):
            pod.message = ("FailedScheduling: namespace GPU quota exceeded")
            return
        candidates: list[tuple[int, "KNode"]] = []
        for knode in self.cluster.nodes:
            if not knode.node.up:
                continue
            if not all(knode.labels.get(k) == v
                       for k, v in pod.spec.node_selector.items()):
                continue
            committed = self._committed_gpus(knode.node.hostname)
            # allocatable = spec GPUs minus devices failed out (ECC) —
            # what the device plugin would report.
            free = knode.node.available_gpu_count - committed
            if free < pod.spec.total_gpus:
                continue
            candidates.append((committed, knode))
        if not candidates:
            pod.message = (f"FailedScheduling: 0/{len(self.cluster.nodes)} "
                           "nodes have enough free GPUs")
            return
        candidates.sort(key=lambda pair: (pair[0], pair[1].node.hostname))
        chosen = candidates[0][1]
        pod.node_name = chosen.node.hostname
        pod.message = f"Scheduled to {pod.node_name}"
        self.api.update(pod)
        self.cluster.kernel.trace.emit("k8s.schedule", pod=pod.meta.name,
                                       node=pod.node_name)
