"""Helm-like chart rendering; includes the upstream vLLM chart.

The paper (Section 3.2) migrated from hand-written deployment files to the
vLLM project's Helm chart: *"This chart takes care of the details of
provisioning storage via a persistent volume claim, downloading the model
from object storage (using the same AWS client container as Figure 3), and
deploying the vLLM container."*  ``render_vllm_chart`` reproduces exactly
that: PVC + model-download init container + Deployment + Service + Ingress.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from ..errors import ConfigurationError
from ..units import GiB
from .objects import (Deployment, Ingress, KContainerSpec, KObject,
                      ObjectMeta, PersistentVolumeClaim, PodSpec, Service)

if TYPE_CHECKING:  # pragma: no cover
    from .cluster import KubernetesCluster


def _env_list_to_dict(env: list[dict[str, str]]) -> dict[str, str]:
    out = {}
    for item in env:
        try:
            out[item["name"]] = str(item["value"])
        except KeyError as exc:
            raise ConfigurationError(f"bad env entry {item!r}") from exc
    return out


def render_vllm_chart(release: str, values: dict[str, Any],
                      namespace: str = "default") -> list[KObject]:
    """Render the vLLM chart from a values dict shaped like paper Figure 6.

    Recognised values (defaults in parentheses)::

        image.repository ("vllm/vllm-openai"), image.tag, image.command
        env: [{name, value}, ...]
        resources.gpus (1)
        storage.size ("300Gi" equivalent bytes)
        modelDownload.enabled/bucket/prefix/endpoint  (init container)
        service.port (8000)
        ingress.enabled/host/path
        replicas (1)
    """
    image = values.get("image", {})
    repository = image.get("repository", "vllm/vllm-openai")
    tag = image.get("tag", "latest")
    command = tuple(image.get("command", ()))
    env = _env_list_to_dict(values.get("env", []))
    gpus = int(values.get("resources", {}).get("gpus", 1))
    storage_bytes = int(values.get("storage", {}).get("size", 300 * GiB))
    port = int(values.get("service", {}).get("port", 8000))
    replicas = int(values.get("replicas", 1))

    labels = {"app": release}
    objects: list[KObject] = []

    claim_name = f"{release}-model-storage"
    objects.append(PersistentVolumeClaim(
        ObjectMeta(name=claim_name, namespace=namespace, labels=labels),
        size_bytes=storage_bytes))

    init_containers = []
    dl = values.get("modelDownload", {})
    if dl.get("enabled", True):
        init_env = dict(env)
        init_env.update({
            "MODEL_BUCKET": dl.get("bucket", "huggingface.co"),
            "MODEL_PREFIX": dl.get("prefix", ""),
            "MOUNT_PATH": "/data",
        })
        for key in ("AWS_ACCESS_KEY_ID", "AWS_SECRET_ACCESS_KEY",
                    "AWS_ENDPOINT_URL", "AWS_REQUEST_CHECKSUM_CALCULATION",
                    "AWS_MAX_ATTEMPTS"):
            if key in dl:
                init_env[key] = str(dl[key])
        init_containers.append(KContainerSpec(
            name="model-download",
            image=dl.get("image", "amazon/aws-cli:latest"),
            command=("s3", "sync",
                     f"s3://{dl.get('bucket', 'huggingface.co')}/"
                     f"{dl.get('prefix', '')}", "/data"),
            env=init_env,
            volume_mounts={claim_name: "/data"},
        ))

    main = KContainerSpec(
        name="vllm",
        image=f"{repository}:{tag}",
        command=command,
        env=env,
        gpus=gpus,
        volume_mounts={claim_name: "/data"},
        port=port,
    )
    template = PodSpec(containers=[main], init_containers=init_containers,
                       restart_policy="Always")
    objects.append(Deployment(
        ObjectMeta(name=release, namespace=namespace, labels=labels),
        replicas=replicas, template=template, selector=labels))

    objects.append(Service(
        ObjectMeta(name=f"{release}-svc", namespace=namespace, labels=labels),
        selector=labels, port=port))

    ingress = values.get("ingress", {})
    if ingress.get("enabled", True):
        objects.append(Ingress(
            ObjectMeta(name=f"{release}-ingress", namespace=namespace,
                       labels=labels),
            host=ingress.get("host", f"{release}.apps.cluster.example"),
            service_name=f"{release}-svc",
            service_port=port,
            path=ingress.get("path", "/")))

    return objects


@dataclass
class HelmRelease:
    """An installed chart: tracks created objects for uninstall."""

    name: str
    namespace: str = "default"
    objects: list[KObject] = field(default_factory=list)

    @classmethod
    def install(cls, cluster: KubernetesCluster, name: str,
                values: dict[str, Any],
                namespace: str = "default") -> HelmRelease:
        """``helm install <name> vllm/vllm -f values.yaml`` equivalent."""
        rendered = render_vllm_chart(name, values, namespace)
        release = cls(name=name, namespace=namespace)
        for obj in rendered:
            cluster.api.create(obj)
            release.objects.append(obj)
        cluster.kernel.trace.emit("helm.install", release=name,
                                  objects=[o.kind for o in rendered])
        return release

    def uninstall(self, cluster: KubernetesCluster) -> None:
        # Delete dependents first (pods go away via Deployment deletion).
        for obj in reversed(self.objects):
            try:
                cluster.api.delete(obj.kind, obj.meta.name, obj.meta.namespace)
            except Exception:
                pass
        for pod in list(cluster.pods(self.namespace)):
            if pod.meta.labels.get("app") == self.name and not pod.deleted:
                cluster.api.delete("Pod", pod.meta.name, pod.meta.namespace)
        cluster.kernel.trace.emit("helm.uninstall", release=self.name)
