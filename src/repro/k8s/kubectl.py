"""kubectl-style human-readable views of cluster state.

Formatting only — handy in examples, operator runbooks, and debugging
(`print(kubectl.get_pods(cluster))`).
"""

from __future__ import annotations

from ..units import fmt_duration
from .cluster import KubernetesCluster
from .objects import Pod


def _table(headers: list[str], rows: list[list[str]]) -> str:
    widths = [max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
              for i, h in enumerate(headers)]
    out = ["  ".join(h.ljust(w)
                 for h, w in zip(headers, widths, strict=True))]
    for row in rows:
        out.append("  ".join(c.ljust(w)
                     for c, w in zip(row, widths, strict=True)))
    return "\n".join(out)


def get_pods(cluster: KubernetesCluster, namespace: str | None = None) -> str:
    """``kubectl get pods`` equivalent."""
    now = cluster.kernel.now
    rows = []
    for pod in cluster.pods(namespace):
        if pod.deleted:
            continue
        ready = "1/1" if pod.ready else "0/1"
        status = pod.phase.value
        if "CrashLoopBackOff" in pod.message:
            status = "CrashLoopBackOff"
        rows.append([pod.meta.name, ready, status, str(pod.restarts),
                     fmt_duration(now - pod.meta.created_at),
                     pod.node_name or "<none>"])
    return _table(["NAME", "READY", "STATUS", "RESTARTS", "AGE", "NODE"],
                  rows)


def get_deployments(cluster: KubernetesCluster,
                    namespace: str | None = None) -> str:
    """``kubectl get deployments`` equivalent."""
    rows = []
    for dep in cluster.api.list("Deployment", namespace):
        live = [p for p in cluster.pods(dep.meta.namespace)
                if p.owner == dep.meta.name and not p.deleted]
        ready = sum(1 for p in live if p.ready)
        rows.append([dep.meta.name, f"{ready}/{dep.replicas}",
                     str(len(live)), str(dep.template.total_gpus)])
    return _table(["NAME", "READY", "PODS", "GPUS/POD"], rows)


def describe_pod(cluster: KubernetesCluster, name: str,
                 namespace: str = "default") -> str:
    """``kubectl describe pod`` (abridged)."""
    pod: Pod = cluster.api.get("Pod", name, namespace)
    main = pod.spec.main
    lines = [
        f"Name:         {pod.meta.name}",
        f"Namespace:    {pod.meta.namespace}",
        f"Node:         {pod.node_name or '<pending>'}",
        f"Status:       {pod.phase.value}",
        f"Ready:        {pod.ready}",
        f"Restarts:     {pod.restarts}",
        f"Labels:       {pod.meta.labels}",
        f"Image:        {main.image}",
        f"GPUs:         {main.gpus}",
        f"Message:      {pod.message or '<none>'}",
    ]
    if pod.spec.init_containers:
        lines.append("Init containers: " + ", ".join(
            c.name for c in pod.spec.init_containers))
    if main.volume_mounts:
        lines.append("Mounts:       " + ", ".join(
            f"{claim} -> {path}"
            for claim, path in main.volume_mounts.items()))
    return "\n".join(lines)
