"""The API server: a versioned object store with watch streams.

Controllers subscribe to kinds; every create/update/delete notifies them
(after the current event completes, preserving determinism).  This is the
declarative control loop substrate the paper credits for Kubernetes'
self-healing behavior.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable
from typing import TYPE_CHECKING, Any

from ..errors import NotFoundError, StateError
from .objects import KObject

if TYPE_CHECKING:  # pragma: no cover
    from ..simkernel import SimKernel


@dataclass(frozen=True)
class WatchEvent:
    type: str  # ADDED | MODIFIED | DELETED
    obj: KObject


class ApiServer:
    """Object store keyed by (kind, namespace, name)."""

    def __init__(self, kernel: SimKernel):
        self.kernel = kernel
        self._objects: dict[tuple[str, str, str], KObject] = {}
        self._watchers: dict[str, list[Callable[[WatchEvent], None]]] = {}
        self._version = 0

    # -- CRUD -------------------------------------------------------------------

    def create(self, obj: KObject) -> KObject:
        key = (obj.kind, obj.meta.namespace, obj.meta.name)
        if key in self._objects:
            raise StateError(f"{obj.kind} {obj.meta.name!r} already exists "
                             f"in namespace {obj.meta.namespace!r}")
        self._version += 1
        obj.meta.resource_version = self._version
        obj.meta.uid = f"uid-{self._version}"
        obj.meta.created_at = self.kernel.now
        self._objects[key] = obj
        self._notify(WatchEvent("ADDED", obj))
        return obj

    def update(self, obj: KObject) -> KObject:
        key = (obj.kind, obj.meta.namespace, obj.meta.name)
        if key not in self._objects:
            raise NotFoundError(f"{obj.kind} {obj.meta.name!r} not found")
        self._version += 1
        obj.meta.resource_version = self._version
        self._objects[key] = obj
        self._notify(WatchEvent("MODIFIED", obj))
        return obj

    def delete(self, kind: str, name: str,
               namespace: str = "default") -> None:
        key = (kind, namespace, name)
        obj = self._objects.pop(key, None)
        if obj is None:
            raise NotFoundError(f"{kind} {name!r} not found in {namespace!r}")
        if hasattr(obj, "deleted"):
            obj.deleted = True  # type: ignore[attr-defined]
        self._version += 1
        self._notify(WatchEvent("DELETED", obj))

    def get(self, kind: str, name: str, namespace: str = "default") -> Any:
        obj = self._objects.get((kind, namespace, name))
        if obj is None:
            raise NotFoundError(f"{kind} {name!r} not found in {namespace!r}")
        return obj

    def try_get(self, kind: str, name: str,
                namespace: str = "default") -> Any | None:
        return self._objects.get((kind, namespace, name))

    def list(self, kind: str, namespace: str | None = None,
             selector: dict[str, str] | None = None) -> list[Any]:
        out = []
        for (k, ns, _), obj in sorted(self._objects.items()):
            if k != kind:
                continue
            if namespace is not None and ns != namespace:
                continue
            if selector is not None and not obj.matches(selector):
                continue
            out.append(obj)
        return out

    # -- watches -----------------------------------------------------------------

    def watch(self, kind: str,
              callback: Callable[[WatchEvent], None]) -> None:
        self._watchers.setdefault(kind, []).append(callback)

    def _notify(self, event: WatchEvent) -> None:
        watchers = self._watchers.get(event.obj.kind, [])
        if not watchers:
            return
        # Deliver asynchronously (next kernel tick) so controllers always
        # observe a settled store, and cascades stay deterministic.
        tick = self.kernel.event()
        tick.succeed()

        def deliver(_ev):
            for cb in list(watchers):
                cb(event)

        tick.add_callback(deliver)
