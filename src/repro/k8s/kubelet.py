"""Kubelet: runs pods assigned to its node via the CRI runtime.

Implements init containers, crash-loop backoff restarts, image-pull and
resource backoff (``ImagePullBackOff`` during a registry outage, GPU
exhaustion after device faults), and pod teardown.  The backoff schedule
(10 s doubling, capped at 5 min) mirrors Kubernetes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..containers import RunOpts
from ..errors import CapacityError, ImagePullError
from ..simkernel import Interrupted
from .api import WatchEvent
from .objects import KContainerSpec, Pod, PodPhase

if TYPE_CHECKING:  # pragma: no cover
    from .cluster import KNode, KubernetesCluster

BACKOFF_BASE = 10.0
BACKOFF_CAP = 300.0


class Kubelet:
    """One per node; starts/stops containers for pods bound to the node."""

    def __init__(self, cluster: KubernetesCluster, knode: KNode):
        self.cluster = cluster
        self.kernel = cluster.kernel
        self.knode = knode
        self.active: dict[str, object] = {}  # pod uid -> lifecycle process
        self.containers: dict[str, object] = {}  # pod uid -> main Container
        cluster.api.watch("Pod", self._on_pod_event)

    # -- watch plumbing -----------------------------------------------------------

    def _on_pod_event(self, event: WatchEvent) -> None:
        pod = event.obj
        if not isinstance(pod, Pod):
            return
        if event.type == "DELETED":
            self._teardown(pod)
            return
        if pod.node_name != self.knode.node.hostname:
            return
        if pod.deleted or pod.meta.uid in self.active:
            return
        if pod.phase is not PodPhase.PENDING:
            return
        proc = self.kernel.spawn(self._pod_lifecycle(pod),
                                 name=f"kubelet:{pod.meta.name}")
        self.active[pod.meta.uid] = proc

    def _teardown(self, pod: Pod) -> None:
        container = self.containers.pop(pod.meta.uid, None)
        if container is not None and getattr(container, "running", False):
            container.stop()
        proc = self.active.pop(pod.meta.uid, None)
        if proc is not None and getattr(proc, "is_alive", False):
            proc.interrupt("pod deleted")

    # -- pod lifecycle ---------------------------------------------------------------

    def _opts_for(self, pod: Pod, cspec: KContainerSpec) -> RunOpts:
        mounts = {}
        for claim, path in cspec.volume_mounts.items():
            mounts[path] = self.cluster.volume_for(pod.meta.namespace, claim)
        # Simulation-side extras (perf profiles, fault plans) ride on the
        # pod template; see Deployer._attach_extras.
        extras = dict(getattr(pod.spec, "_extras", {}) or {})
        return RunOpts(
            name=f"{pod.meta.name}/{cspec.name}",
            env=dict(cspec.env),
            command=tuple(cspec.command),
            gpus=cspec.gpus if cspec.gpus else None,
            mounts=mounts,
            extras=extras,
        )

    def _start_container(self, pod: Pod, cspec: KContainerSpec):
        """Generator: start one container, holding the pod in backoff when
        the image cannot be pulled (registry outage) or node resources are
        exhausted (e.g. a GPU lost to an ECC fault) instead of wedging the
        lifecycle process."""
        runtime = self.cluster.cri
        node = self.knode.node
        attempts = 0
        while True:
            try:
                container = yield from runtime.run(
                    node, cspec.image, self._opts_for(pod, cspec))
                return container
            except (ImagePullError, CapacityError) as exc:
                attempts += 1
                kind = ("ImagePullBackOff"
                        if isinstance(exc, ImagePullError) else "OutOfGpu")
                pod.message = f"{kind}: {exc}"
                self.cluster.api.update(pod)
                self.kernel.trace.emit("k8s.start_backoff",
                                       pod=pod.meta.name, kind=kind,
                                       attempts=attempts)
                yield self.kernel.timeout(self._backoff(attempts))

    def _pod_lifecycle(self, pod: Pod):
        try:
            # Init containers run to completion, in order.
            for init in pod.spec.init_containers:
                while True:
                    container = yield from self._start_container(pod, init)
                    code = yield container.exited
                    if code == 0:
                        break
                    pod.restarts += 1
                    pod.message = (f"Init:CrashLoopBackOff "
                                   f"({init.name} exit {code})")
                    self.cluster.api.update(pod)
                    if pod.spec.restart_policy == "Never":
                        pod.phase = PodPhase.FAILED
                        self.cluster.api.update(pod)
                        return
                    yield self.kernel.timeout(self._backoff(pod.restarts))

            # Main container with restart policy.
            while True:
                cspec = pod.spec.main
                container = yield from self._start_container(pod, cspec)
                self.containers[pod.meta.uid] = container
                pod.phase = PodPhase.RUNNING
                pod.message = "Started"
                self.cluster.api.update(pod)
                ready_or_exit = self.kernel.any_of(
                    [container.ready, container.exited])
                try:
                    yield ready_or_exit
                except Exception:
                    pass  # startup crash: exit path below handles it
                if container.ready.triggered and container.ready.ok and \
                        not container.exited.triggered:
                    pod.ready = True
                    self.cluster.api.update(pod)
                code = yield container.exited
                pod.ready = False
                if pod.deleted:
                    return
                if code == 0 and pod.spec.restart_policy != "Always":
                    pod.phase = PodPhase.SUCCEEDED
                    pod.message = "Completed"
                    self.cluster.api.update(pod)
                    return
                if code != 0 and pod.spec.restart_policy == "Never":
                    pod.phase = PodPhase.FAILED
                    pod.message = f"Error (exit {code})"
                    self.cluster.api.update(pod)
                    return
                pod.restarts += 1
                pod.phase = PodPhase.PENDING
                pod.message = f"CrashLoopBackOff (exit {code})" if code else \
                    "Restarting"
                self.cluster.api.update(pod)
                self.kernel.trace.emit("k8s.restart", pod=pod.meta.name,
                                       restarts=pod.restarts, code=code)
                yield self.kernel.timeout(self._backoff(pod.restarts))
        except Interrupted:
            container = self.containers.get(pod.meta.uid)
            if container is not None and getattr(container, "running", False):
                container.stop()
        finally:
            self.active.pop(pod.meta.uid, None)

    @staticmethod
    def _backoff(restarts: int) -> float:
        return min(BACKOFF_BASE * (2 ** max(0, restarts - 1)), BACKOFF_CAP)
