"""Kubernetes API object model (the subset the paper's deployments use)."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from ..errors import ConfigurationError


@dataclass
class ObjectMeta:
    name: str
    namespace: str = "default"
    labels: dict[str, str] = field(default_factory=dict)
    uid: str = ""
    resource_version: int = 0
    created_at: float = 0.0

    def key(self) -> tuple[str, str]:
        return (self.namespace, self.name)


class KObject:
    """Base for API objects; ``kind`` is the API kind string."""

    kind = "Object"

    def __init__(self, meta: ObjectMeta):
        self.meta = meta

    def matches(self, selector: dict[str, str]) -> bool:
        return all(self.meta.labels.get(k) == v for k, v in selector.items())

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{self.kind} {self.meta.namespace}/{self.meta.name}>"


@dataclass
class KContainerSpec:
    """Container section of a pod template."""

    name: str
    image: str
    command: tuple[str, ...] = ()
    env: dict[str, str] = field(default_factory=dict)
    gpus: int = 0
    memory_bytes: int = 0
    volume_mounts: dict[str, str] = field(default_factory=dict)  # claim -> path
    port: int | None = None


@dataclass
class PodSpec:
    containers: list[KContainerSpec] = field(default_factory=list)
    init_containers: list[KContainerSpec] = field(default_factory=list)
    node_selector: dict[str, str] = field(default_factory=dict)
    restart_policy: str = "Always"  # Always | OnFailure | Never

    def __post_init__(self):
        if not self.containers:
            raise ConfigurationError("pod needs at least one container")
        if self.restart_policy not in ("Always", "OnFailure", "Never"):
            raise ConfigurationError(
                f"bad restartPolicy {self.restart_policy!r}")

    @property
    def main(self) -> KContainerSpec:
        return self.containers[0]

    @property
    def total_gpus(self) -> int:
        return sum(c.gpus for c in self.containers)


class PodPhase(enum.Enum):
    PENDING = "Pending"
    RUNNING = "Running"
    SUCCEEDED = "Succeeded"
    FAILED = "Failed"


class Pod(KObject):
    kind = "Pod"
    _ids = itertools.count(1)

    def __init__(self, meta: ObjectMeta, spec: PodSpec):
        super().__init__(meta)
        self.spec = spec
        self.phase = PodPhase.PENDING
        self.node_name: str | None = None
        self.restarts = 0
        self.message = ""
        self.ready = False
        self.owner: str | None = None  # owning Deployment name
        self.deleted = False


class Deployment(KObject):
    kind = "Deployment"

    def __init__(self, meta: ObjectMeta, replicas: int, template: PodSpec,
                 selector: dict[str, str] | None = None):
        super().__init__(meta)
        if replicas < 0:
            raise ConfigurationError("negative replicas")
        self.replicas = replicas
        self.template = template
        self.selector = selector or dict(meta.labels) or {"app": meta.name}


class Service(KObject):
    kind = "Service"

    def __init__(self, meta: ObjectMeta, selector: dict[str, str],
                 port: int, target_port: int | None = None):
        super().__init__(meta)
        self.selector = selector
        self.port = port
        self.target_port = target_port if target_port is not None else port


class Ingress(KObject):
    kind = "Ingress"

    def __init__(self, meta: ObjectMeta, host: str, service_name: str,
                 service_port: int, path: str = "/", tls: bool = True):
        super().__init__(meta)
        self.host = host
        self.service_name = service_name
        self.service_port = service_port
        self.path = path
        self.tls = tls


class PersistentVolumeClaim(KObject):
    kind = "PersistentVolumeClaim"

    def __init__(self, meta: ObjectMeta, size_bytes: int,
                 storage_class: str = "ceph-block"):
        super().__init__(meta)
        if size_bytes <= 0:
            raise ConfigurationError("PVC needs a positive size")
        self.size_bytes = size_bytes
        self.storage_class = storage_class
        self.bound = False
        self.volume_name: str | None = None


class Namespace(KObject):
    kind = "Namespace"

    def __init__(self, meta: ObjectMeta):
        super().__init__(meta)


class ResourceQuota(KObject):
    """Multi-tenant GPU quota per namespace (Sandia's clusters are
    multi-tenant; quotas are how sharing is enforced)."""

    kind = "ResourceQuota"

    def __init__(self, meta: ObjectMeta, gpu_limit: int):
        super().__init__(meta)
        self.gpu_limit = gpu_limit
