"""Ingress controller: external URL -> Service -> a ready Pod.

Backends are re-resolved on *every request*, so pod restarts and
migrations are picked up automatically — the paper's "Kubernetes
automatically takes care of restarting the container and updating the
ingress routes".
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..errors import APIError
from ..net.http import HttpClient, HttpRequest, HttpService
from .objects import Ingress, PodPhase, Service

if TYPE_CHECKING:  # pragma: no cover
    from .cluster import KubernetesCluster


class IngressController:
    """One HTTP frontend on the cluster's externally reachable host."""

    def __init__(self, cluster: KubernetesCluster, frontend_host: str,
                 port: int = 443):
        self.cluster = cluster
        self.api = cluster.api
        self.frontend_host = frontend_host
        self.port = port
        self._rr: dict[str, int] = {}
        self._client = HttpClient(cluster.fabric, frontend_host)
        self._service = HttpService(cluster.fabric, frontend_host, port,
                                    self._handle, name="ingress")

    @property
    def url(self) -> str:
        return f"https://{self.frontend_host}:{self.port}"

    # -- request path ------------------------------------------------------------

    def _resolve(self, request: HttpRequest) -> tuple[str, int]:
        """Match ingress rules (longest path prefix), then pick a ready pod."""
        rules: list[Ingress] = self.api.list("Ingress")
        matches = [r for r in rules if request.path.startswith(r.path)]
        host_header = request.header("host")
        if host_header:
            host_rules = [r for r in matches if r.host == host_header]
            matches = host_rules or matches
        if not matches:
            raise APIError(404, f"no ingress rule for {request.path!r}")
        rule = max(matches, key=lambda r: len(r.path))
        service: Service | None = self.api.try_get(
            "Service", rule.service_name, rule.meta.namespace)
        if service is None:
            raise APIError(503, f"service {rule.service_name!r} not found")
        endpoints = [
            p for p in self.api.list("Pod", rule.meta.namespace,
                                     selector=service.selector)
            if p.phase is PodPhase.RUNNING and p.ready and not p.deleted]
        if not endpoints:
            raise APIError(503, "no ready endpoints behind service "
                                f"{service.meta.name!r}")
        idx = self._rr.get(service.meta.name, 0) % len(endpoints)
        self._rr[service.meta.name] = idx + 1
        pod = endpoints[idx]
        return pod.node_name, service.target_port

    def _handle(self, request: HttpRequest):
        node_host, port = self._resolve(request)
        response = yield from self._client.request(
            request.method, node_host, port, request.path,
            json=request.json, headers=request.headers,
            body_bytes=request.body_bytes)
        return response
