"""Deployment controller and PVC binder."""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING

from ..storage.mounts import VolumeMount
from .api import WatchEvent
from .objects import (Deployment, ObjectMeta, PersistentVolumeClaim, Pod,
                      PodPhase)

if TYPE_CHECKING:  # pragma: no cover
    from .cluster import KubernetesCluster


class DeploymentController:
    """Keeps |live pods| == replicas for every Deployment."""

    def __init__(self, cluster: KubernetesCluster):
        self.cluster = cluster
        self.api = cluster.api
        self._suffix = itertools.count(1)
        self.api.watch("Deployment", self._on_event)
        self.api.watch("Pod", self._on_event)

    def _on_event(self, event: WatchEvent) -> None:
        for dep in self.api.list("Deployment"):
            self._reconcile(dep)

    def _live_pods(self, dep: Deployment) -> list[Pod]:
        return [p for p in self.api.list("Pod", dep.meta.namespace)
                if p.owner == dep.meta.name and not p.deleted
                and p.phase is not PodPhase.FAILED
                and p.phase is not PodPhase.SUCCEEDED]

    def _reconcile(self, dep: Deployment) -> None:
        live = self._live_pods(dep)
        missing = dep.replicas - len(live)
        for _ in range(missing):
            name = f"{dep.meta.name}-{next(self._suffix):04d}"
            pod = Pod(ObjectMeta(name=name, namespace=dep.meta.namespace,
                                 labels=dict(dep.selector)),
                      spec=dep.template)
            pod.owner = dep.meta.name
            self.api.create(pod)
            self.cluster.kernel.trace.emit("k8s.deploy.scale_up",
                                           deployment=dep.meta.name, pod=name)
        for pod in live[dep.replicas:] if missing < 0 else []:
            self.api.delete("Pod", pod.meta.name, pod.meta.namespace)
            self.cluster.kernel.trace.emit("k8s.deploy.scale_down",
                                           deployment=dep.meta.name,
                                           pod=pod.meta.name)


class PvcBinder:
    """Binds PersistentVolumeClaims to volumes on the storage backend."""

    def __init__(self, cluster: KubernetesCluster):
        self.cluster = cluster
        self.api = cluster.api
        self._vol_ids = itertools.count(1)
        self.api.watch("PersistentVolumeClaim", self._on_event)

    def _on_event(self, event: WatchEvent) -> None:
        if event.type == "DELETED":
            claim = event.obj
            self.cluster.volumes.pop(
                (claim.meta.namespace, claim.meta.name), None)
            return
        for claim in self.api.list("PersistentVolumeClaim"):
            if not claim.bound:
                self._bind(claim)

    def _bind(self, claim: PersistentVolumeClaim) -> None:
        vol_name = f"pv-{next(self._vol_ids):04d}"
        mount = VolumeMount(self.cluster.fabric,
                            self.cluster.storage_backend_host, vol_name)
        self.cluster.volumes[(claim.meta.namespace, claim.meta.name)] = mount
        claim.bound = True
        claim.volume_name = vol_name
        self.api.update(claim)
        self.cluster.kernel.trace.emit("k8s.pvc.bound", claim=claim.meta.name,
                                       volume=vol_name,
                                       size=claim.size_bytes)
