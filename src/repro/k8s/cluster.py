"""Cluster assembly: nodes + API server + control plane components."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..containers.cri import CriRuntime
from ..containers.registry import Registry
from ..errors import NotFoundError
from ..hardware.node import Node
from ..net.topology import Fabric
from ..storage.mounts import VolumeMount
from .api import ApiServer
from .controllers import DeploymentController, PvcBinder
from .ingress import IngressController
from .kubelet import Kubelet
from .objects import PodPhase
from .scheduler import PodScheduler

if TYPE_CHECKING:  # pragma: no cover
    from ..simkernel import SimKernel


@dataclass
class KNode:
    """A Kubernetes worker: hardware node + K8s labels."""

    node: Node
    labels: dict[str, str] = field(default_factory=dict)


class KubernetesCluster:
    """A complete simulated cluster (OpenShift-like).

    Parameters
    ----------
    frontend_host:
        Externally reachable host running the ingress frontend (the
        OpenShift router).
    storage_backend_host:
        Fabric host backing persistent volumes (ODF/Ceph service).
    """

    def __init__(self, kernel: SimKernel, fabric: Fabric, name: str,
                 nodes: list[Node], registry: Registry,
                 frontend_host: str, storage_backend_host: str,
                 node_labels: dict[str, dict[str, str]] | None = None):
        self.kernel = kernel
        self.fabric = fabric
        self.name = name
        self.api = ApiServer(kernel)
        self.cri = CriRuntime(kernel, fabric, registry)
        self.storage_backend_host = storage_backend_host
        self.volumes: dict[tuple[str, str], VolumeMount] = {}
        labels = node_labels or {}
        self.nodes = [KNode(n, labels.get(n.hostname, {})) for n in nodes]
        self.scheduler = PodScheduler(self)
        self.deployments = DeploymentController(self)
        self.pvc_binder = PvcBinder(self)
        self.ingress = IngressController(self, frontend_host)
        self.kubelets = [Kubelet(self, kn) for kn in self.nodes]

    # -- lookups -----------------------------------------------------------------

    def volume_for(self, namespace: str, claim: str) -> VolumeMount:
        mount = self.volumes.get((namespace, claim))
        if mount is None:
            raise NotFoundError(
                f"PVC {claim!r} in namespace {namespace!r} is not bound")
        return mount

    def knode(self, hostname: str) -> KNode:
        for kn in self.nodes:
            if kn.node.hostname == hostname:
                return kn
        raise NotFoundError(f"node {hostname!r} not in cluster {self.name!r}")

    def pods(self, namespace: str | None = None):
        return self.api.list("Pod", namespace)

    def running_pods(self, namespace: str | None = None):
        return [p for p in self.pods(namespace)
                if p.phase is PodPhase.RUNNING and not p.deleted]

    # -- operations --------------------------------------------------------------------

    def drain(self, hostname: str) -> None:
        """Evict all pods from a node (maintenance); controllers replace
        them elsewhere, and ingress follows automatically."""
        knode = self.knode(hostname)
        knode.node.up = False
        for pod in self.pods():
            if pod.node_name == hostname and not pod.deleted:
                self.api.delete("Pod", pod.meta.name, pod.meta.namespace)
        self.kernel.trace.emit("k8s.drain", node=hostname)

    def uncordon(self, hostname: str) -> None:
        self.knode(hostname).node.up = True
        self.kernel.trace.emit("k8s.uncordon", node=hostname)
