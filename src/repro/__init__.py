"""repro — reproduction of *Experience Deploying Containerized GenAI Services
at an HPC Center* (Beltre, Ogden, Pedretti; SC Workshops '25).

The library simulates a converged HPC/cloud computing environment — HPC
platforms under Slurm/Flux, Kubernetes clusters, container registries,
site-wide S3 object storage — and serves LLM inference with a vLLM-like
continuous-batching engine, all on a deterministic discrete-event kernel.
On top sits the paper's prospective contribution: a unified container
deployment tool (:mod:`repro.core`) that deploys the same application
package across Podman, Apptainer, and Kubernetes.

Quickstart
----------
>>> from repro.core import build_sandia_site
>>> site = build_sandia_site(seed=42)

See ``examples/quickstart.py`` for an end-to-end deployment.
"""

from . import units  # noqa: F401  (re-exported convenience)
from .errors import ReproError  # noqa: F401

__version__ = "1.0.0"
