"""Flow-level network simulation.

Data movement (container pulls, S3 transfers, model loads) is modeled as
fluid *flows* over capacitated links with **max-min fair** bandwidth sharing
— the standard abstraction for TCP-like fair sharing at the timescales that
matter here (seconds to hours).  On top sit:

* :mod:`~repro.net.topology` — hosts, links, route tables (including the
  paper's S3 routing-fix scenario);
* :mod:`~repro.net.http` — a simulated HTTP layer for service APIs;
* :mod:`~repro.net.ssh` / :mod:`~repro.net.proxy` /
  :mod:`~repro.net.cal` — the three ingress mechanisms of Section 3.3:
  SSH tunnels, NGINX reverse proxy, and Compute-as-Login mode.
"""

from .flows import Flow, FlowNetwork, Link, max_min_fair_rates
from .topology import Fabric, Host
from .http import HttpClient, HttpRequest, HttpResponse, HttpService
from .ssh import SshTunnel
from .proxy import NginxProxy
from .cal import ComputeAsLogin

__all__ = [
    "ComputeAsLogin",
    "Fabric",
    "Flow",
    "FlowNetwork",
    "Host",
    "HttpClient",
    "HttpRequest",
    "HttpResponse",
    "HttpService",
    "Link",
    "max_min_fair_rates",
    "NginxProxy",
    "SshTunnel",
]
