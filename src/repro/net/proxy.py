"""NGINX-style reverse proxy on a platform service node.

Used by Compute-as-Login mode: external traffic arriving at
``proxy_host:port`` is routed through the cluster's internal network to the
compute node running the target GenAI service.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from .http import HttpService, forwarding_handler
from .topology import Fabric


@dataclass
class Upstream:
    listen_port: int
    target_host: str
    target_port: int
    service: HttpService

    @property
    def url(self) -> str:
        return f"http://{self.service.host}:{self.listen_port}"


class NginxProxy:
    """A reverse proxy bound to one (externally reachable) host."""

    def __init__(self, fabric: Fabric, host: str):
        if host not in fabric.hosts:
            raise ConfigurationError(f"unknown proxy host {host!r}")
        self.fabric = fabric
        self.host = host
        self.upstreams: dict[int, Upstream] = {}

    def add_upstream(self, listen_port: int, target_host: str,
                     target_port: int) -> Upstream:
        """Route proxy_host:listen_port -> target_host:target_port."""
        if listen_port in self.upstreams:
            raise ConfigurationError(
                f"proxy port {listen_port} already routed")
        handler = forwarding_handler(self.fabric, self.host,
                                     target_host, target_port)
        service = HttpService(self.fabric, self.host, listen_port, handler,
                              name=f"nginx->{target_host}:{target_port}")
        upstream = Upstream(listen_port, target_host, target_port, service)
        self.upstreams[listen_port] = upstream
        self.fabric.kernel.trace.emit(
            "nginx.upstream.add", proxy=self.host, port=listen_port,
            target=f"{target_host}:{target_port}")
        return upstream

    def remove_upstream(self, listen_port: int) -> None:
        upstream = self.upstreams.pop(listen_port, None)
        if upstream is not None:
            upstream.service.close()

    def retarget(self, listen_port: int, target_host: str,
                 target_port: int) -> Upstream:
        """Point an existing listen port at a new backend (pod moved)."""
        self.remove_upstream(listen_port)
        return self.add_upstream(listen_port, target_host, target_port)
