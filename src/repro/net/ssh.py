"""SSH tunnels — single-user ingress to HPC compute nodes.

Models ``ssh -L <local>:<compute>:<port> -N -f <login-node>`` from the
paper: a service appears at (user_host, local_port) that forwards through
the login node to the compute node.  Only the tunnel owner's host gains
access; other external users still cannot reach the service (the paper's
motivation for Compute-as-Login mode).
"""

from __future__ import annotations

from ..errors import ConfigurationError
from .http import HttpRequest, HttpService, forwarding_handler
from .topology import Fabric


class SshTunnel:
    """An active port-forward: user_host:local_port -> target_host:port."""

    def __init__(self, fabric: Fabric, user_host: str, login_host: str,
                 target_host: str, target_port: int,
                 local_port: int | None = None):
        for h in (user_host, login_host, target_host):
            if h not in fabric.hosts:
                raise ConfigurationError(f"unknown host {h!r}")
        login = fabric.hosts[login_host]
        if not login.externally_reachable and \
                fabric.hosts[user_host].zone == "external":
            raise ConfigurationError(
                f"login node {login_host!r} is not reachable from outside; "
                "cannot establish tunnel")
        self.fabric = fabric
        self.user_host = user_host
        self.login_host = login_host
        self.target_host = target_host
        self.target_port = target_port
        self.local_port = local_port if local_port is not None else target_port

        inner = forwarding_handler(fabric, login_host, target_host, target_port)

        def handler(request: HttpRequest):
            # Requests traverse user -> login (SSH) -> compute; restrict to
            # the tunnel owner (an SSH -L bind listens on localhost).
            if request.client_host != self.user_host:
                from ..errors import APIError
                raise APIError(403, "tunnel is bound to localhost")
            response = yield from inner(request)
            return response

        self._service = HttpService(fabric, user_host, self.local_port,
                                    handler, name=f"ssh-tunnel->{target_host}")
        fabric.kernel.trace.emit(
            "ssh.tunnel.open", user=user_host, login=login_host,
            target=f"{target_host}:{target_port}", local_port=self.local_port)

    @property
    def command(self) -> str:
        """The equivalent interactive command (paper Section 3.3)."""
        return (f"ssh -L {self.local_port}:{self.target_host}:"
                f"{self.target_port} -N -f {self.login_host}")

    def close(self) -> None:
        self._service.close()
        self.fabric.kernel.trace.emit("ssh.tunnel.close",
                                      user=self.user_host,
                                      target=self.target_host)
