"""Hosts, fabrics, and routing.

A :class:`Fabric` is the site-wide network graph: hosts and switches are
vertices, :class:`~repro.net.flows.Link` objects are edges (one Link per
direction).  Paths resolve by explicit *route overrides* first (how the
paper's routing bug is modeled: a default route pinning Hops-to-S3 traffic
onto a slow campus path), falling back to fewest-hops shortest path.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING

from ..errors import ConfigurationError, NetworkUnreachable, NotFoundError
from .flows import Flow, FlowNetwork, Link

if TYPE_CHECKING:  # pragma: no cover
    from ..simkernel import SimKernel


class Host:
    """A network endpoint (node NIC, service frontend, user workstation).

    ``zone`` groups hosts for routing/reachability policy, e.g.
    ``"hops"``, ``"goodall"``, ``"site"``, ``"external"``.  Cluster compute
    nodes are *not* reachable from ``external`` unless an ingress mechanism
    (SSH tunnel, CaL, K8s ingress) is in place — enforced at the HTTP layer.
    """

    def __init__(self, name: str, zone: str = "site",
                 externally_reachable: bool = False):
        self.name = name
        self.zone = zone
        self.externally_reachable = externally_reachable

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Host {self.name} zone={self.zone}>"


class Fabric:
    """The site network: vertices, directed links, routes, and flows."""

    def __init__(self, kernel: SimKernel):
        self.kernel = kernel
        self.flows = FlowNetwork(kernel)
        self.hosts: dict[str, Host] = {}
        self._vertices: set[str] = set()
        # adjacency: vertex -> {neighbor: Link}
        self._adj: dict[str, dict[str, Link]] = {}
        self.links: dict[str, Link] = {}
        # (src_selector, dst_selector) -> vertex path; selectors are host
        # names or "zone:<zone>"; more-specific (host,host) wins.
        self._route_overrides: dict[tuple[str, str], list[str]] = {}
        self.base_latency = 0.0002  # per hop, seconds
        self.latency_factor = 1.0   # chaos: site-wide latency multiplier
        self._down_hosts: set[str] = set()
        # Resolved (src, dst) -> vertex path memo.  Every topology or
        # routing mutation (new vertex/link, route override, partition,
        # heal) flushes it, so a hit is always exactly what a fresh
        # resolution would return — pure memoization, no staleness.
        # The serving hot path resolves the same few router/backend
        # pairs millions of times per scenario; this takes each off the
        # per-request BFS.
        self._path_cache: dict[tuple[str, str], list[str]] = {}

    # -- construction ----------------------------------------------------------

    def add_host(self, name: str, zone: str = "site",
                 externally_reachable: bool = False) -> Host:
        if name in self.hosts:
            raise ConfigurationError(f"duplicate host {name!r}")
        host = Host(name, zone=zone, externally_reachable=externally_reachable)
        self.hosts[name] = host
        self._vertices.add(name)
        self._adj.setdefault(name, {})
        return host

    def add_switch(self, name: str) -> str:
        """A non-endpoint vertex (spine, router, frontend aggregator)."""
        self._vertices.add(name)
        self._adj.setdefault(name, {})
        return name

    def connect(self, a: str, b: str, bandwidth: float,
                name: str | None = None,
                bandwidth_ba: float | None = None) -> tuple[Link, Link]:
        """Create a bidirectional connection as two directed links."""
        for v in (a, b):
            if v not in self._vertices:
                raise NotFoundError(f"unknown vertex {v!r}")
        self._path_cache.clear()
        base = name or f"{a}--{b}"
        fwd = Link(f"{base}:fwd", bandwidth)
        rev = Link(f"{base}:rev", bandwidth_ba
                   if bandwidth_ba is not None else bandwidth)
        self._adj[a][b] = fwd
        self._adj[b][a] = rev
        self.links[fwd.name] = fwd
        self.links[rev.name] = rev
        return fwd, rev

    def add_route(self, src: str, dst: str, via: Sequence[str]) -> None:
        """Pin traffic from ``src`` to ``dst`` onto an explicit vertex path.

        ``src``/``dst`` may be host names or ``"zone:<name>"`` selectors.
        ``via`` is the complete vertex path including both endpoints for
        host selectors, or the interior path for zone selectors (the
        endpoints are substituted per-flow).
        """
        self._route_overrides[(src, dst)] = list(via)
        self._path_cache.clear()

    def remove_route(self, src: str, dst: str) -> None:
        self._route_overrides.pop((src, dst), None)
        self._path_cache.clear()

    # -- fault injection ---------------------------------------------------------

    def partition_host(self, name: str) -> None:
        """Cut a host off the fabric: every path to or from it fails with
        :class:`NetworkUnreachable` until :meth:`heal_host`."""
        if name not in self.hosts:
            raise NotFoundError(f"unknown host {name!r}")
        self._down_hosts.add(name)
        self._path_cache.clear()
        self.kernel.trace.emit("net.partition", host=name)

    def heal_host(self, name: str) -> None:
        self._down_hosts.discard(name)
        self._path_cache.clear()
        self.kernel.trace.emit("net.heal", host=name)

    def partitioned(self, name: str) -> bool:
        return name in self._down_hosts

    def set_latency_factor(self, factor: float) -> None:
        """Scale every per-hop latency (chaos latency-spike injection)."""
        if factor <= 0:
            raise ConfigurationError(f"latency factor must be > 0: {factor}")
        self.latency_factor = float(factor)
        self.kernel.trace.emit("net.latency_factor", factor=factor)

    # -- path resolution -----------------------------------------------------------

    def _selectors(self, host: Host) -> list[str]:
        return [host.name, f"zone:{host.zone}"]

    def vertex_path(self, src: str, dst: str) -> list[str]:
        """Resolve the vertex path from src host to dst host.

        Memoized per (src, dst); the memo is flushed on every mutation,
        so the result is always identical to a fresh resolution.  Treat
        the returned list as read-only.
        """
        cached = self._path_cache.get((src, dst))
        if cached is not None:
            return cached
        path = self._resolve_path(src, dst)
        self._path_cache[(src, dst)] = path
        return path

    def _resolve_path(self, src: str, dst: str) -> list[str]:
        if src == dst:
            return [src]
        for endpoint in (src, dst):
            if endpoint in self._down_hosts:
                raise NetworkUnreachable(
                    f"host {endpoint!r} is partitioned from the fabric",
                    sim_time=self.kernel.now)
        s, d = self.hosts.get(src), self.hosts.get(dst)
        if s is None or d is None:
            raise NotFoundError(f"unknown host in route {src!r} -> {dst!r}")
        # Most-specific override wins: (host,host), (host,zone),
        # (zone,host), (zone,zone).
        for ssel in self._selectors(s):
            for dsel in self._selectors(d):
                via = self._route_overrides.get((ssel, dsel))
                if via is not None:
                    path = list(via)
                    if path[0] != src:
                        path = [src] + path
                    if path[-1] != dst:
                        path = path + [dst]
                    self._validate_path(path)
                    return path
        return self._shortest_path(src, dst)

    def _validate_path(self, path: list[str]) -> None:
        for a, b in zip(path, path[1:], strict=False):
            if b not in self._adj.get(a, {}):
                raise ConfigurationError(
                    f"route override uses missing link {a!r}->{b!r}")

    def _shortest_path(self, src: str, dst: str) -> list[str]:
        # BFS by hop count; deterministic tie-break on vertex name.
        from collections import deque
        prev: dict[str, str] = {src: src}
        queue = deque([src])
        while queue:
            v = queue.popleft()
            if v == dst:
                break
            for nbr in sorted(self._adj[v]):
                if nbr not in prev:
                    prev[nbr] = v
                    queue.append(nbr)
        if dst not in prev:
            raise NetworkUnreachable(
                f"no route {src!r} -> {dst!r}", sim_time=self.kernel.now)
        path = [dst]
        while path[-1] != src:
            path.append(prev[path[-1]])
        path.reverse()
        return path

    def link_path(self, src: str, dst: str) -> list[Link]:
        """The directed links along the resolved vertex path."""
        vpath = self.vertex_path(src, dst)
        return [self._adj[a][b]
                for a, b in zip(vpath, vpath[1:], strict=False)]

    def latency(self, src: str, dst: str) -> float:
        """One-way latency along the resolved path."""
        return (self.base_latency * self.latency_factor
                * max(1, len(self.vertex_path(src, dst)) - 1))

    # -- transfers --------------------------------------------------------------------

    def start_transfer(self, src: str, dst: str, nbytes: float,
                       name: str = "", rate_cap: float | None = None) -> Flow:
        """Begin a bulk transfer between two hosts."""
        path = self.link_path(src, dst)
        return self.flows.start_flow(path, nbytes,
                                     name=name or f"{src}->{dst}",
                                     rate_cap=rate_cap)

    def transfer(self, src: str, dst: str, nbytes: float, name: str = "",
                 rate_cap: float | None = None):
        """Process helper: yield-from to move bytes and return the Flow."""
        flow = self.start_transfer(src, dst, nbytes, name=name,
                                   rate_cap=rate_cap)
        yield flow.done
        return flow
