"""Capacitated links and max-min fair fluid flows.

The model: each active transfer is a *flow* along a path of links.  At any
instant every flow gets its max-min fair rate; whenever the flow set changes
the network settles transferred bytes and recomputes rates.  Transfer
completion events are scheduled from the current rate and invalidated (via a
generation counter) when rates change.

This reproduces the phenomena the paper describes qualitatively:
*"container registries become a bottleneck when multiple nodes
simultaneously pull the same container image"* and the S3 frontend's
16 x 25 Gbps aggregate limit.
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Sequence
from typing import TYPE_CHECKING

from ..errors import ConfigurationError
from ..simkernel import Event

if TYPE_CHECKING:  # pragma: no cover
    from ..simkernel import SimKernel


class Link:
    """A unidirectional capacitated link (bytes/second)."""

    __slots__ = ("name", "capacity")

    def __init__(self, name: str, capacity: float):
        if capacity <= 0:
            raise ConfigurationError(f"link {name!r} capacity must be > 0")
        self.name = name
        self.capacity = float(capacity)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Link {self.name} {self.capacity:.3g} B/s>"


def max_min_fair_rates(flows: Sequence["Flow"]) -> dict["Flow", float]:
    """Compute max-min fair rates for ``flows`` over their shared links.

    Classic progressive-filling: repeatedly find the most-constrained link
    (smallest fair share among its unfixed flows), fix those flows at that
    share, subtract, repeat.  Flows may carry an intrinsic ``rate_cap``
    (e.g. a disk or endpoint limit), treated as a private link.
    """
    rates: dict[Flow, float] = {}
    unfixed = set(flows)
    if not unfixed:
        return rates

    remaining: dict[Link, float] = {}
    members: dict[Link, set[Flow]] = {}
    for flow in flows:
        for link in flow.path:
            if link not in remaining:
                remaining[link] = link.capacity
                members[link] = set()
            members[link].add(flow)

    while unfixed:
        # Fair share currently offered by each link to its unfixed flows.
        best_share = math.inf
        best_link: Link | None = None
        for link, flws in members.items():
            live = flws & unfixed
            if not live:
                continue
            share = remaining[link] / len(live)
            if share < best_share:
                best_share = share
                best_link = link
        # Flows whose rate_cap binds before any link does.  Iteration is
        # ordered by flow id everywhere below: identity-ordered sets would
        # change float accumulation order (and thus traces) run-to-run.
        capped = sorted(
            (f for f in unfixed
             if f.rate_cap is not None and f.rate_cap <= best_share),
            key=lambda f: f.id)
        if capped:
            # Fix the most-constrained capped flow(s) first.
            tightest = min(f.rate_cap for f in capped)  # type: ignore[type-var]
            for flow in [f for f in capped if f.rate_cap == tightest]:
                rates[flow] = tightest
                unfixed.discard(flow)
                for link in flow.path:
                    remaining[link] = max(0.0, remaining[link] - tightest)
            continue
        if best_link is None:
            # Remaining flows traverse no shared link and have no cap:
            # they are unconstrained (e.g. loopback); give them infinity.
            for flow in sorted(unfixed, key=lambda f: f.id):
                rates[flow] = math.inf
            break
        for flow in sorted(members[best_link] & unfixed,
                           key=lambda f: f.id):
            rates[flow] = best_share
            unfixed.discard(flow)
            for link in flow.path:
                remaining[link] = max(0.0, remaining[link] - best_share)
    return rates


class Flow:
    """An active transfer of ``nbytes`` along ``path``.

    ``done`` is an event succeeding (with the flow) at completion time.
    """

    _ids = itertools.count(1)

    def __init__(self, network: FlowNetwork, path: Sequence[Link],
                 nbytes: float, name: str = "",
                 rate_cap: float | None = None):
        if nbytes < 0:
            raise ConfigurationError("flow size must be >= 0")
        if rate_cap is not None and rate_cap <= 0:
            raise ConfigurationError("rate_cap must be > 0")
        self.id = next(Flow._ids)
        self.network = network
        self.path: tuple[Link, ...] = tuple(path)
        self.name = name or f"flow-{self.id}"
        self.total_bytes = float(nbytes)
        self.bytes_done = 0.0
        self.rate = 0.0
        self.rate_cap = rate_cap
        self.started_at = network.kernel.now
        self.finished_at: float | None = None
        self.done: Event = Event(network.kernel)
        self.cancelled = False

    @property
    def remaining(self) -> float:
        return max(0.0, self.total_bytes - self.bytes_done)

    @property
    def mean_throughput(self) -> float:
        """Average achieved throughput (bytes/s) over the flow's lifetime."""
        end = self.finished_at if self.finished_at is not None \
            else self.network.kernel.now
        elapsed = end - self.started_at
        return self.bytes_done / elapsed if elapsed > 0 else 0.0

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<Flow {self.name} {self.bytes_done:.3g}/"
                f"{self.total_bytes:.3g}B rate={self.rate:.3g}>")


class FlowNetwork:
    """Tracks active flows and keeps their max-min rates current."""

    def __init__(self, kernel: SimKernel):
        self.kernel = kernel
        self.active: set[Flow] = set()
        self._last_settle = kernel.now
        self._generation = 0

    # -- public API ------------------------------------------------------------

    def start_flow(self, path: Sequence[Link], nbytes: float,
                   name: str = "", rate_cap: float | None = None) -> Flow:
        """Begin transferring ``nbytes`` along ``path``; returns the Flow.

        Zero-byte flows complete immediately.
        """
        flow = Flow(self, path, nbytes, name=name, rate_cap=rate_cap)
        if flow.total_bytes == 0:
            flow.finished_at = self.kernel.now
            flow.done.succeed(flow)
            return flow
        self._settle()
        self.active.add(flow)
        self._reallocate()
        self.kernel.trace.emit("net.flow.start", flow=flow.name,
                               nbytes=nbytes,
                               links=[link.name for link in flow.path])
        return flow

    def cancel_flow(self, flow: Flow) -> None:
        """Abort a flow; its ``done`` event fails with TransferError."""
        from ..errors import TransferError
        if flow not in self.active:
            return
        self._settle()
        self.active.discard(flow)
        flow.cancelled = True
        flow.finished_at = self.kernel.now
        flow.done.fail(TransferError(
            f"flow {flow.name} cancelled", sim_time=self.kernel.now))
        self._reallocate()

    def transfer(self, path: Sequence[Link], nbytes: float, name: str = "",
                 rate_cap: float | None = None):
        """Process helper: ``yield from network.transfer(...)`` inside a proc."""
        flow = self.start_flow(path, nbytes, name=name, rate_cap=rate_cap)
        result = yield flow.done
        return result

    # -- internals ---------------------------------------------------------------

    def _ordered(self) -> list[Flow]:
        """Active flows in creation order.

        ``active`` is a set of identity-hashed objects: iterating it
        directly would let the max-min fair tie-break (and completion
        callback order) vary run-to-run with object addresses, breaking
        the same-seed-same-trace guarantee.
        """
        return sorted(self.active, key=lambda f: f.id)

    def _settle(self) -> None:
        """Credit bytes transferred since the last rate change."""
        now = self.kernel.now
        dt = now - self._last_settle
        if dt > 0:
            for flow in self._ordered():
                if math.isinf(flow.rate):
                    flow.bytes_done = flow.total_bytes
                else:
                    flow.bytes_done = min(
                        flow.total_bytes, flow.bytes_done + flow.rate * dt)
        self._last_settle = now

    def _reallocate(self) -> None:
        """Recompute rates and (re)schedule the next completion."""
        self._generation += 1
        gen = self._generation
        rates = max_min_fair_rates(self._ordered())
        for flow, rate in rates.items():
            flow.rate = rate

        # Finish any flow that is already done (zero remaining or inf rate).
        finished = [f for f in self._ordered()
                    if f.remaining <= self._tolerance(f)
                    or math.isinf(f.rate)]
        for flow in finished:
            self._complete(flow)
        if finished:
            # Completion changed the flow set; recurse once to reallocate.
            self._reallocate()
            return

        # Schedule a single timer at the earliest completion; it re-settles
        # and completes whatever finished.  Stale timers (older generation)
        # are ignored.
        next_eta = math.inf
        for flow in self._ordered():
            if flow.rate > 0:
                next_eta = min(next_eta, flow.remaining / flow.rate)
        if math.isfinite(next_eta):
            timer = self.kernel.timeout(next_eta)
            timer.add_callback(self._make_finisher(gen))

    @staticmethod
    def _tolerance(flow: Flow) -> float:
        # Sub-byte residue from float rounding on multi-GiB transfers.
        return max(1.0, flow.total_bytes * 1e-9)

    def _make_finisher(self, gen: int):
        def finisher(_ev) -> None:
            if gen != self._generation:
                return  # stale timer from an older allocation
            self._settle()
            finished = [f for f in self._ordered()
                        if f.remaining <= self._tolerance(f)]
            if not finished:
                # The timer fired exactly at the earliest ETA, so the
                # argmin flow is done up to float rounding; force it.
                due = min(self._ordered(),
                          key=lambda f: (f.remaining / f.rate
                                         if f.rate > 0 else math.inf,
                                         f.id))
                finished = [due]
            for flow in finished:
                self._complete(flow)
            self._reallocate()
        return finisher

    def _complete(self, flow: Flow) -> None:
        flow.bytes_done = flow.total_bytes
        flow.finished_at = self.kernel.now
        self.active.discard(flow)
        if not flow.done.triggered:
            flow.done.succeed(flow)
        self.kernel.trace.emit("net.flow.done", flow=flow.name,
                               elapsed=flow.finished_at - flow.started_at,
                               mean_bps=flow.mean_throughput)

    # -- inspection -----------------------------------------------------------------

    def utilization(self, link: Link) -> float:
        """Current fraction of ``link`` capacity in use."""
        # _ordered() (not the raw set): float accumulation order must
        # not vary with object addresses.
        used = sum(f.rate for f in self._ordered() if link in f.path
                   and not math.isinf(f.rate))
        return used / link.capacity
