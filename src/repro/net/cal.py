"""Compute-as-Login (CaL) mode.

The paper's mechanism for multi-user / persistent access on HPC platforms:
a system operator reconfigures a compute node to act like a login node and
routes a port of the platform's NGINX proxy to it.  Once provisioned, the
*user* can re-deploy services behind the lease without operator involvement.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError, NotFoundError, StateError
from .proxy import NginxProxy, Upstream
from .topology import Fabric


@dataclass
class CaLLease:
    """A provisioned CaL allocation for one user on one compute node."""

    user: str
    node: str
    external_port: int
    upstream: Upstream
    active: bool = True
    history: list[tuple[float, str]] = field(default_factory=list)

    @property
    def url(self) -> str:
        return self.upstream.url


class ComputeAsLogin:
    """Operator-facing manager of CaL leases on one HPC platform.

    ``provision`` is the operator action; ``retarget`` (pointing the lease
    at a new service port / node after the user redeploys) is self-service.
    """

    def __init__(self, fabric: Fabric, proxy: NginxProxy,
                 port_range: tuple[int, int] = (9000, 9100)):
        self.fabric = fabric
        self.proxy = proxy
        self.port_range = port_range
        self.leases: dict[tuple[str, str], CaLLease] = {}
        self._next_port = port_range[0]

    def _allocate_port(self) -> int:
        while self._next_port < self.port_range[1]:
            port = self._next_port
            self._next_port += 1
            if port not in self.proxy.upstreams:
                return port
        raise ConfigurationError("CaL port range exhausted")

    def provision(self, user: str, node: str,
                  service_port: int = 8000) -> CaLLease:
        """Operator provisions a CaL resource routing to ``node``."""
        if node not in self.fabric.hosts:
            raise NotFoundError(f"unknown node {node!r}")
        key = (user, node)
        if key in self.leases and self.leases[key].active:
            raise StateError(f"user {user!r} already holds a CaL lease on {node}")
        port = self._allocate_port()
        upstream = self.proxy.add_upstream(port, node, service_port)
        lease = CaLLease(user=user, node=node, external_port=port,
                         upstream=upstream)
        lease.history.append((self.fabric.kernel.now, f"provisioned->{node}"))
        self.leases[key] = lease
        self.fabric.kernel.trace.emit("cal.provision", user=user, node=node,
                                      port=port)
        return lease

    def retarget(self, lease: CaLLease, node: str,
                 service_port: int = 8000) -> None:
        """User redeploys their service; lease follows without operator."""
        if not lease.active:
            raise StateError("lease has been released")
        lease.upstream = self.proxy.retarget(lease.external_port, node,
                                             service_port)
        lease.node = node
        lease.history.append((self.fabric.kernel.now, f"retargeted->{node}"))
        self.fabric.kernel.trace.emit("cal.retarget", user=lease.user,
                                      node=node, port=lease.external_port)

    def release(self, lease: CaLLease) -> None:
        if not lease.active:
            return
        self.proxy.remove_upstream(lease.external_port)
        lease.active = False
        lease.history.append((self.fabric.kernel.now, "released"))
        self.fabric.kernel.trace.emit("cal.release", user=lease.user,
                                      node=lease.node)
