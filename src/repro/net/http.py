"""Simulated HTTP: services bound to (host, port), clients, and forwarding.

Handlers can be plain functions (fast paths) or generator processes (they
may ``yield`` simulation events, e.g. an inference server awaiting token
generation).  Reachability policy: a client on an ``external``-zone host can
only reach services on externally reachable hosts — which is exactly why the
paper needs SSH tunnels, Compute-as-Login, or Kubernetes ingress.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from collections.abc import Callable, Generator
from typing import TYPE_CHECKING, Any

from ..errors import APIError, ConfigurationError, NetworkUnreachable
from .topology import Fabric

if TYPE_CHECKING:  # pragma: no cover
    from ..simkernel import SimKernel


@dataclass
class HttpRequest:
    method: str
    path: str
    headers: dict[str, str] = field(default_factory=dict)
    json: Any = None
    body_bytes: int = 0
    client_host: str = ""

    def header(self, name: str, default: str | None = None) -> str | None:
        for k, v in self.headers.items():
            if k.lower() == name.lower():
                return v
        return default


@dataclass
class HttpResponse:
    status: int = 200
    json: Any = None
    body_bytes: int = 0
    headers: dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


Handler = Callable[[HttpRequest], Any]


class HttpService:
    """A handler bound to (host, port) on a fabric."""

    def __init__(self, fabric: Fabric, host: str, port: int,
                 handler: Handler, name: str = ""):
        self.fabric = fabric
        self.host = host
        self.port = port
        self.handler = handler
        self.name = name or f"{host}:{port}"
        key = (host, port)
        registry = _registry(fabric)
        if key in registry:
            raise ConfigurationError(f"port {port} already bound on {host}")
        registry[key] = self

    def close(self) -> None:
        _registry(self.fabric).pop((self.host, self.port), None)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<HttpService {self.name} @{self.host}:{self.port}>"


def _registry(fabric: Fabric) -> dict[tuple[str, int], HttpService]:
    reg = getattr(fabric, "_http_services", None)
    if reg is None:
        reg = {}
        fabric._http_services = reg  # type: ignore[attr-defined]
    return reg


def lookup(fabric: Fabric, host: str, port: int) -> HttpService | None:
    return _registry(fabric).get((host, port))


class HttpClient:
    """An HTTP client living on a fabric host.

    :meth:`request` is a generator — drive it with ``yield from`` inside a
    simulation process, or via ``kernel.run(until=kernel.spawn(...))``.
    """

    def __init__(self, fabric: Fabric, host: str):
        self.fabric = fabric
        self.host = host
        if host not in fabric.hosts:
            raise ConfigurationError(f"client host {host!r} not on fabric")

    def request(self, method: str, host: str, port: int, path: str,
                json: Any = None, headers: dict[str, str] | None = None,
                body_bytes: int = 0,
                ) -> Generator[Any, Any, HttpResponse]:
        """Issue a request and return the response.

        Raises :class:`NetworkUnreachable` when routing/reachability policy
        blocks the connection, and :class:`APIError` (502) when nothing
        listens on the target port.
        """
        kernel = self.fabric.kernel
        service = lookup(self.fabric, host, port)
        client_zone = self.fabric.hosts[self.host].zone
        target = self.fabric.hosts.get(host)
        if target is None:
            raise NetworkUnreachable(f"unknown host {host!r}",
                                     sim_time=kernel.now)
        if client_zone == "external" and not target.externally_reachable:
            raise NetworkUnreachable(
                f"{host} is not reachable from the external network "
                "(use an SSH tunnel, Compute-as-Login, or K8s ingress)",
                sim_time=kernel.now)
        if service is None:
            raise APIError(502, f"connection refused: {host}:{port}")

        # Forward latency (+ optional request body transfer).
        yield kernel.timeout(self.fabric.latency(self.host, host))
        if body_bytes > 0:
            flow = self.fabric.start_transfer(
                self.host, host, body_bytes, name=f"http:{path}")
            yield flow.done

        request = HttpRequest(method=method.upper(), path=path,
                              headers=dict(headers or {}), json=json,
                              body_bytes=body_bytes, client_host=self.host)
        response = yield from _invoke(kernel, service, request)

        # Return latency (+ response body transfer).
        yield kernel.timeout(self.fabric.latency(host, self.host))
        if response.body_bytes > 0:
            flow = self.fabric.start_transfer(
                host, self.host, response.body_bytes, name=f"http:{path}:resp")
            yield flow.done
        return response

    def get(self, host: str, port: int, path: str, **kw):
        return self.request("GET", host, port, path, **kw)

    def post(self, host: str, port: int, path: str, **kw):
        return self.request("POST", host, port, path, **kw)


def _invoke(kernel: SimKernel, service: HttpService,
            request: HttpRequest) -> Generator[Any, Any, HttpResponse]:
    """Run a handler, which may be sync or a generator process."""
    try:
        result = service.handler(request)
    except APIError as exc:
        return HttpResponse(status=exc.status, json={"error": exc.message})
    if inspect.isgenerator(result):
        try:
            result = yield from result
        except APIError as exc:
            return HttpResponse(status=exc.status, json={"error": exc.message})
    if not isinstance(result, HttpResponse):
        raise ConfigurationError(
            f"handler for {service.name} returned {type(result).__name__}, "
            "expected HttpResponse")
    return result


def forwarding_handler(fabric: Fabric, via_host: str, target_host: str,
                       target_port: int) -> Handler:
    """A handler that proxies requests onward (NGINX / tunnel hop).

    The onward request originates from ``via_host`` — which is the point:
    the proxy host *can* reach cluster-internal targets that external
    clients cannot.
    """
    client = HttpClient(fabric, via_host)

    def handler(request: HttpRequest):
        response = yield from client.request(
            request.method, target_host, target_port, request.path,
            json=request.json, headers=request.headers,
            body_bytes=request.body_bytes)
        return response

    return handler
