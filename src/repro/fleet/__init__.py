"""Fleet subsystem: open-loop traffic, SLO tracking, elastic autoscaling.

The paper's evaluation drives one static deployment per platform with
closed-loop concurrency sweeps.  This package is the production-scale
counterpart: realistic open-loop arrivals (:mod:`~repro.fleet.traffic`),
online SLO accounting (:mod:`~repro.fleet.slo`), an elastic replica
autoscaler spanning the converged site's HPC and Kubernetes platforms
(:mod:`~repro.fleet.autoscaler`), and the :class:`~repro.fleet.fleet.Fleet`
handle that ties them together behind one ``run_scenario()`` call.
"""

from .autoscaler import (Autoscaler, AutoscalerConfig, LoadSample,
                         ScaleEvent)
from .fleet import (DisaggSpec, Fleet, FleetConfig, FleetReport,
                    Replica, TurnResult)
from .slo import (RequestRecord, SloReport, SloSnapshot, SloSpec,
                  SloTracker, TenantStats)
from .stats import LogHistogram
from .traffic import (ArrivalSchedule, DiurnalSchedule, FlashCrowdSchedule,
                      PoissonSchedule, Tenant, TenantMix, TrafficGenerator)

__all__ = [
    "ArrivalSchedule",
    "Autoscaler",
    "AutoscalerConfig",
    "DisaggSpec",
    "DiurnalSchedule",
    "FlashCrowdSchedule",
    "Fleet",
    "FleetConfig",
    "FleetReport",
    "LoadSample",
    "LogHistogram",
    "PoissonSchedule",
    "Replica",
    "RequestRecord",
    "ScaleEvent",
    "SloReport",
    "SloSnapshot",
    "SloSpec",
    "SloTracker",
    "Tenant",
    "TenantMix",
    "TenantStats",
    "TrafficGenerator",
    "TurnResult",
]
