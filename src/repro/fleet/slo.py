"""SLO specs and online rolling-window service metrics.

A :class:`SloSpec` states per-request objectives (TTFT and end-to-end
latency deadlines, an error budget) and the percentile at which the fleet
must meet them.  The :class:`SloTracker` consumes one
:class:`RequestRecord` per completed (or failed) request and answers two
questions online:

* :meth:`SloTracker.snapshot` — how is the last ``window`` seconds doing?
  (the autoscaler's and operator dashboards' view);
* :meth:`SloTracker.report` — how did the whole run do, per tenant?
  (the scenario's scorecard).

*Goodput* follows the serving-systems convention: completions that met
every per-request objective, per second — throughput that violates the
SLO does not count.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover
    from ..simkernel import SimKernel


@dataclass(frozen=True)
class SloSpec:
    """Per-request objectives plus the attainment percentile."""

    name: str = "interactive"
    ttft_target: float = 5.0        # seconds to first token
    e2e_target: float = 60.0        # seconds to completion
    max_error_rate: float = 0.01    # fraction of requests
    percentile: float = 95.0        # attainment percentile for slo_met
    window: float = 300.0           # rolling-window width, seconds

    def __post_init__(self):
        if self.ttft_target <= 0 or self.e2e_target <= 0:
            raise ConfigurationError("SLO targets must be positive")
        if not (0 < self.percentile < 100):
            raise ConfigurationError("percentile must be in (0, 100)")
        if self.window <= 0:
            raise ConfigurationError("window must be positive")


@dataclass(frozen=True)
class RequestRecord:
    """One finished request as observed by the client."""

    tenant: str
    submitted: float
    completed: float
    ttft: float
    latency: float
    prompt_tokens: int = 0
    output_tokens: int = 0
    ok: bool = True
    error: str = ""


@dataclass
class SloSnapshot:
    """Rolling-window view at one instant.

    A window with zero finished requests is *vacuously healthy*: there
    is nothing to violate, so ``attainment`` is 1.0, ``slo_met`` is
    true, every rate is 0.0, and every percentile is 0.0 — never NaN or
    ``None``, so snapshots always serialize cleanly and autoscaler /
    chaos-probe consumers need no special casing.  ``samples`` carries
    the window population so those consumers can still distinguish
    "healthy" from "idle".
    """

    time: float
    window: float
    samples: int = 0                # finished requests in the window
    completions: int = 0
    errors: int = 0
    error_rate: float = 0.0
    throughput_rps: float = 0.0
    goodput_rps: float = 0.0
    output_tok_per_s: float = 0.0
    attainment: float = 1.0         # fraction of finished requests "good"
    ttft_p50: float = 0.0
    ttft_p95: float = 0.0
    ttft_p99: float = 0.0
    e2e_p50: float = 0.0
    e2e_p95: float = 0.0
    e2e_p99: float = 0.0
    slo_met: bool = True

    def row(self) -> dict:
        return {
            "t": round(self.time, 1),
            "samples": self.samples,
            "completions": self.completions,
            "errors": self.errors,
            "error_rate": round(self.error_rate, 4),
            "throughput_rps": round(self.throughput_rps, 3),
            "goodput_rps": round(self.goodput_rps, 3),
            "output_tok_per_s": round(self.output_tok_per_s, 1),
            "attainment": round(self.attainment, 4),
            "ttft_p95_s": round(self.ttft_p95, 3),
            "e2e_p95_s": round(self.e2e_p95, 3),
            "slo_met": self.slo_met,
        }


@dataclass
class TenantStats:
    completed: int = 0
    errors: int = 0
    good: int = 0
    output_tokens: int = 0

    @property
    def attainment(self) -> float:
        total = self.completed + self.errors
        return self.good / total if total else 1.0


@dataclass
class SloReport:
    """Whole-run scorecard."""

    spec: SloSpec
    duration: float
    submitted: int
    completed: int
    errors: int
    good: int
    output_tokens: int
    ttft_percentiles: dict[str, float]
    e2e_percentiles: dict[str, float]
    per_tenant: dict[str, TenantStats] = field(default_factory=dict)

    @property
    def attainment(self) -> float:
        total = self.completed + self.errors
        return self.good / total if total else 1.0

    @property
    def error_rate(self) -> float:
        total = self.completed + self.errors
        return self.errors / total if total else 0.0

    @property
    def goodput_rps(self) -> float:
        return self.good / self.duration if self.duration > 0 else 0.0

    def summary(self) -> str:
        lines = [
            f"SLO {self.spec.name!r}: ttft<={self.spec.ttft_target}s "
            f"e2e<={self.spec.e2e_target}s "
            f"@p{self.spec.percentile:.0f}, "
            f"errors<={self.spec.max_error_rate:.1%}",
            f"  requests: {self.submitted} submitted, "
            f"{self.completed} completed, {self.errors} errors "
            f"({self.error_rate:.2%})",
            f"  attainment: {self.attainment:.2%} good "
            f"({self.goodput_rps:.2f} good req/s)",
            f"  ttft  p50/p95/p99: "
            f"{self.ttft_percentiles['p50']:.2f} / "
            f"{self.ttft_percentiles['p95']:.2f} / "
            f"{self.ttft_percentiles['p99']:.2f} s",
            f"  e2e   p50/p95/p99: "
            f"{self.e2e_percentiles['p50']:.2f} / "
            f"{self.e2e_percentiles['p95']:.2f} / "
            f"{self.e2e_percentiles['p99']:.2f} s",
        ]
        for name in sorted(self.per_tenant):
            stats = self.per_tenant[name]
            lines.append(
                f"  tenant {name:18s} completed={stats.completed:6d} "
                f"errors={stats.errors:4d} "
                f"attainment={stats.attainment:.2%}")
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "slo": {
                "name": self.spec.name,
                "ttft_target_s": self.spec.ttft_target,
                "e2e_target_s": self.spec.e2e_target,
                "max_error_rate": self.spec.max_error_rate,
                "percentile": self.spec.percentile,
            },
            "duration_s": round(self.duration, 1),
            "submitted": self.submitted,
            "completed": self.completed,
            "errors": self.errors,
            "error_rate": round(self.error_rate, 4),
            "attainment": round(self.attainment, 4),
            "goodput_rps": round(self.goodput_rps, 3),
            "output_tokens": self.output_tokens,
            "ttft_s": {k: round(v, 3)
                       for k, v in self.ttft_percentiles.items()},
            "e2e_s": {k: round(v, 3)
                      for k, v in self.e2e_percentiles.items()},
            "per_tenant": {
                name: {"completed": s.completed, "errors": s.errors,
                       "attainment": round(s.attainment, 4)}
                for name, s in self.per_tenant.items()},
        }


def _percentiles(values: list[float]) -> dict[str, float]:
    # Zero observations -> all-zero percentiles (never NaN): reports for
    # idle or all-error runs must still serialize with allow_nan=False.
    if not values:
        return {"p50": 0.0, "p95": 0.0, "p99": 0.0}
    arr = np.asarray(values)
    return {"p50": float(np.percentile(arr, 50)),
            "p95": float(np.percentile(arr, 95)),
            "p99": float(np.percentile(arr, 99))}


class SloTracker:
    """Online SLO accounting: O(1) per observation, windowed snapshots."""

    def __init__(self, kernel: "SimKernel", spec: SloSpec):
        self.kernel = kernel
        self.spec = spec
        self.started_at = kernel.now
        self.submitted = 0
        self._window: deque[RequestRecord] = deque()
        # Whole-run accumulators.
        self.completed = 0
        self.errors = 0
        self.good = 0
        self.output_tokens = 0
        self._all_ttfts: list[float] = []
        self._all_e2es: list[float] = []
        self.per_tenant: dict[str, TenantStats] = {}

    # -- ingestion --------------------------------------------------------------

    def note_submitted(self, n: int = 1) -> None:
        self.submitted += n

    def is_good(self, record: RequestRecord) -> bool:
        return (record.ok and record.ttft <= self.spec.ttft_target
                and record.latency <= self.spec.e2e_target)

    def observe(self, record: RequestRecord) -> None:
        self._window.append(record)
        self._trim(record.completed)
        tenant = self.per_tenant.setdefault(record.tenant, TenantStats())
        if record.ok:
            self.completed += 1
            tenant.completed += 1
            self.output_tokens += record.output_tokens
            tenant.output_tokens += record.output_tokens
            self._all_ttfts.append(record.ttft)
            self._all_e2es.append(record.latency)
        else:
            self.errors += 1
            tenant.errors += 1
        if self.is_good(record):
            self.good += 1
            tenant.good += 1

    def _trim(self, now: float) -> None:
        floor = now - self.spec.window
        while self._window and self._window[0].completed < floor:
            self._window.popleft()

    # -- views ------------------------------------------------------------------

    def snapshot(self) -> SloSnapshot:
        """The rolling-window view right now.

        Empty windows return the vacuously-healthy defaults documented
        on :class:`SloSnapshot`; every field is always a finite number.
        """
        now = self.kernel.now
        self._trim(now)
        snap = SloSnapshot(time=now, window=self.spec.window)
        records = list(self._window)
        if not records:
            return snap
        oks = [r for r in records if r.ok]
        good = sum(self.is_good(r) for r in records)
        span = min(self.spec.window, max(now - self.started_at, 1e-9))
        snap.samples = len(records)
        snap.completions = len(oks)
        snap.errors = len(records) - len(oks)
        snap.error_rate = snap.errors / len(records)
        snap.throughput_rps = len(oks) / span
        snap.goodput_rps = good / span
        snap.output_tok_per_s = sum(r.output_tokens for r in oks) / span
        snap.attainment = good / len(records)
        ttft = _percentiles([r.ttft for r in oks])
        e2e = _percentiles([r.latency for r in oks])
        snap.ttft_p50, snap.ttft_p95, snap.ttft_p99 = (
            ttft["p50"], ttft["p95"], ttft["p99"])
        snap.e2e_p50, snap.e2e_p95, snap.e2e_p99 = (
            e2e["p50"], e2e["p95"], e2e["p99"])
        p = self.spec.percentile
        ttft_at_p = (float(np.percentile([r.ttft for r in oks], p))
                     if oks else 0.0)
        e2e_at_p = (float(np.percentile([r.latency for r in oks], p))
                    if oks else 0.0)
        snap.slo_met = (snap.error_rate <= self.spec.max_error_rate
                        and ttft_at_p <= self.spec.ttft_target
                        and e2e_at_p <= self.spec.e2e_target)
        return snap

    def report(self) -> SloReport:
        return SloReport(
            spec=self.spec,
            duration=self.kernel.now - self.started_at,
            submitted=self.submitted,
            completed=self.completed,
            errors=self.errors,
            good=self.good,
            output_tokens=self.output_tokens,
            ttft_percentiles=_percentiles(self._all_ttfts),
            e2e_percentiles=_percentiles(self._all_e2es),
            per_tenant=dict(self.per_tenant),
        )
