"""SLO specs and online rolling-window service metrics.

A :class:`SloSpec` states per-request objectives (TTFT and end-to-end
latency deadlines, an error budget) and the percentile at which the fleet
must meet them.  The :class:`SloTracker` consumes one
:class:`RequestRecord` per completed (or failed) request and answers two
questions online:

* :meth:`SloTracker.snapshot` — how is the last ``window`` seconds doing?
  (the autoscaler's and operator dashboards' view);
* :meth:`SloTracker.report` — how did the whole run do, per tenant?
  (the scenario's scorecard).

*Goodput* follows the serving-systems convention: completions that met
every per-request objective, per second — throughput that violates the
SLO does not count.

The tracker is *streaming*: window aggregates (good/ok/error counts,
token sums) update O(1) on :meth:`SloTracker.observe` and trim, and
every quantile — the reported p50/p95/p99 **and** the ``slo_met``
attainment gate — comes from one shared
:class:`~repro.fleet.stats.LogHistogram` estimator, so
:meth:`SloTracker.snapshot` never materializes or sorts the window and
its cost is independent of how many requests were ever observed.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..errors import ConfigurationError
from .stats import LogHistogram

if TYPE_CHECKING:  # pragma: no cover
    from ..simkernel import SimKernel


@dataclass(frozen=True)
class SloSpec:
    """Per-request objectives plus the attainment percentile."""

    name: str = "interactive"
    ttft_target: float = 5.0        # seconds to first token
    e2e_target: float = 60.0        # seconds to completion
    max_error_rate: float = 0.01    # fraction of requests
    percentile: float = 95.0        # attainment percentile for slo_met
    window: float = 300.0           # rolling-window width, seconds

    def __post_init__(self):
        if self.ttft_target <= 0 or self.e2e_target <= 0:
            raise ConfigurationError("SLO targets must be positive")
        if not (0 < self.percentile < 100):
            raise ConfigurationError("percentile must be in (0, 100)")
        if self.window <= 0:
            raise ConfigurationError("window must be positive")


@dataclass(frozen=True)
class RequestRecord:
    """One finished request as observed by the client.

    ``turn`` is 0 for single-shot traffic and 1-based for session
    turns; ``cached_tokens`` is how much of the prompt the serving
    engine prefilled from its prefix cache (0 when caching is off or
    the request missed).  ``path`` is the serving path the request
    took — ``"unified"`` for a single-engine completion, ``"disagg"``
    when the router split it into prefill and decode legs — and
    ``kv_transfer_s`` the fabric seconds its KV handoff cost (0 on the
    unified path).
    """

    tenant: str
    submitted: float
    completed: float
    ttft: float
    latency: float
    prompt_tokens: int = 0
    output_tokens: int = 0
    ok: bool = True
    error: str = ""
    session: str = ""
    turn: int = 0
    cached_tokens: int = 0
    path: str = "unified"
    kv_transfer_s: float = 0.0


@dataclass
class SloSnapshot:
    """Rolling-window view at one instant.

    A window with zero finished requests is *vacuously healthy*: there
    is nothing to violate, so ``attainment`` is 1.0, ``slo_met`` is
    true, every rate is 0.0, and every percentile is 0.0 — never NaN or
    ``None``, so snapshots always serialize cleanly and autoscaler /
    chaos-probe consumers need no special casing.  ``samples`` carries
    the window population so those consumers can still distinguish
    "healthy" from "idle".
    """

    time: float
    window: float
    samples: int = 0                # finished requests in the window
    completions: int = 0
    errors: int = 0
    error_rate: float = 0.0
    throughput_rps: float = 0.0
    goodput_rps: float = 0.0
    output_tok_per_s: float = 0.0
    attainment: float = 1.0         # fraction of finished requests "good"
    ttft_p50: float = 0.0
    ttft_p95: float = 0.0
    ttft_p99: float = 0.0
    e2e_p50: float = 0.0
    e2e_p95: float = 0.0
    e2e_p99: float = 0.0
    slo_met: bool = True
    session_samples: int = 0        # finished session turns in the window
    cache_hit_rate: float = 0.0     # fraction of them with a prefix hit

    def row(self) -> dict:
        return {
            "t": round(self.time, 1),
            "samples": self.samples,
            "completions": self.completions,
            "errors": self.errors,
            "error_rate": round(self.error_rate, 4),
            "throughput_rps": round(self.throughput_rps, 3),
            "goodput_rps": round(self.goodput_rps, 3),
            "output_tok_per_s": round(self.output_tok_per_s, 1),
            "attainment": round(self.attainment, 4),
            "ttft_p95_s": round(self.ttft_p95, 3),
            "e2e_p95_s": round(self.e2e_p95, 3),
            "slo_met": self.slo_met,
            **({"session_samples": self.session_samples,
                "cache_hit_rate": round(self.cache_hit_rate, 4)}
               if self.session_samples else {}),
        }


@dataclass
class TenantStats:
    completed: int = 0
    errors: int = 0
    good: int = 0
    output_tokens: int = 0

    @property
    def attainment(self) -> float:
        total = self.completed + self.errors
        return self.good / total if total else 1.0


@dataclass
class SloReport:
    """Whole-run scorecard.

    ``turns`` and ``cache`` are populated only when the run carried
    session traffic: per-turn TTFT splits (the first turn pays a full
    prefill; later turns should ride the prefix cache) and prefix-cache
    effectiveness as observed by clients.  ``paths`` is populated only
    when the run saw a non-unified serving path (disaggregated
    prefill/decode): per-path TTFT aggregates plus the total KV
    transfer seconds the disagg handoffs cost.
    """

    spec: SloSpec
    duration: float
    submitted: int
    completed: int
    errors: int
    good: int
    output_tokens: int
    ttft_percentiles: dict[str, float]
    e2e_percentiles: dict[str, float]
    per_tenant: dict[str, TenantStats] = field(default_factory=dict)
    turns: dict | None = None
    cache: dict | None = None
    paths: dict | None = None

    @property
    def attainment(self) -> float:
        total = self.completed + self.errors
        return self.good / total if total else 1.0

    @property
    def error_rate(self) -> float:
        total = self.completed + self.errors
        return self.errors / total if total else 0.0

    @property
    def goodput_rps(self) -> float:
        return self.good / self.duration if self.duration > 0 else 0.0

    def summary(self) -> str:
        lines = [
            f"SLO {self.spec.name!r}: ttft<={self.spec.ttft_target}s "
            f"e2e<={self.spec.e2e_target}s "
            f"@p{self.spec.percentile:.0f}, "
            f"errors<={self.spec.max_error_rate:.1%}",
            f"  requests: {self.submitted} submitted, "
            f"{self.completed} completed, {self.errors} errors "
            f"({self.error_rate:.2%})",
            f"  attainment: {self.attainment:.2%} good "
            f"({self.goodput_rps:.2f} good req/s)",
            f"  ttft  p50/p95/p99: "
            f"{self.ttft_percentiles['p50']:.2f} / "
            f"{self.ttft_percentiles['p95']:.2f} / "
            f"{self.ttft_percentiles['p99']:.2f} s",
            f"  e2e   p50/p95/p99: "
            f"{self.e2e_percentiles['p50']:.2f} / "
            f"{self.e2e_percentiles['p95']:.2f} / "
            f"{self.e2e_percentiles['p99']:.2f} s",
        ]
        for name in sorted(self.per_tenant):
            stats = self.per_tenant[name]
            lines.append(
                f"  tenant {name:18s} completed={stats.completed:6d} "
                f"errors={stats.errors:4d} "
                f"attainment={stats.attainment:.2%}")
        if self.turns is not None:
            first, later = self.turns["first"], self.turns["later"]
            lines.append(
                f"  ttft by turn: first mean {first['mean_s']:.3f}s "
                f"(n={first['n']}), later mean {later['mean_s']:.3f}s "
                f"(n={later['n']})")
        if self.cache is not None:
            lines.append(
                f"  prefix cache: hit rate {self.cache['hit_rate']:.2%} "
                f"({self.cache['cached_tokens']} of "
                f"{self.cache['prompt_tokens']} prompt tokens cached, "
                f"{self.cache['cached_token_ratio']:.2%})")
        if self.paths is not None:
            for name in sorted(self.paths["ttft"]):
                stats = self.paths["ttft"][name]
                lines.append(
                    f"  path {name:10s} n={stats['n']:6d} "
                    f"ttft mean {stats['mean_s']:.3f}s "
                    f"p95 {stats.get('p95', 0.0):.3f}s")
            lines.append(
                f"  kv transfer: {self.paths['kv_transfer_s']:.1f} s total "
                f"over {self.paths['kv_transfers']} handoffs")
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "slo": {
                "name": self.spec.name,
                "ttft_target_s": self.spec.ttft_target,
                "e2e_target_s": self.spec.e2e_target,
                "max_error_rate": self.spec.max_error_rate,
                "percentile": self.spec.percentile,
            },
            "duration_s": round(self.duration, 1),
            "submitted": self.submitted,
            "completed": self.completed,
            "errors": self.errors,
            "error_rate": round(self.error_rate, 4),
            "attainment": round(self.attainment, 4),
            "goodput_rps": round(self.goodput_rps, 3),
            "output_tokens": self.output_tokens,
            "ttft_s": {k: round(v, 3)
                       for k, v in self.ttft_percentiles.items()},
            "e2e_s": {k: round(v, 3)
                      for k, v in self.e2e_percentiles.items()},
            "per_tenant": {
                name: {"completed": s.completed, "errors": s.errors,
                       "attainment": round(s.attainment, 4)}
                for name, s in self.per_tenant.items()},
            **({"turns": self.turns} if self.turns is not None else {}),
            **({"cache": self.cache} if self.cache is not None else {}),
            **({"paths": self.paths} if self.paths is not None else {}),
        }


@dataclass
class _TurnTtft:
    """Streaming TTFT aggregate for one turn class (first / later)."""

    n: int = 0
    ttft_sum: float = 0.0
    hist: LogHistogram = field(default_factory=LogHistogram)

    def add(self, ttft: float) -> None:
        self.n += 1
        self.ttft_sum += ttft
        self.hist.add(ttft)

    def to_json(self) -> dict:
        out = {"n": self.n,
               "mean_s": round(self.ttft_sum / self.n, 4) if self.n else 0.0}
        out.update({k: round(v, 4)
                    for k, v in self.hist.percentile_dict().items()})
        return out


class SloTracker:
    """Online SLO accounting: O(1) per observation, O(1)-window snapshots.

    The rolling window keeps the raw records (ordered by completion
    time) only so aged-out records can be *subtracted* from the running
    aggregates; nothing ever iterates, copies, or sorts the window.
    """

    def __init__(self, kernel: SimKernel, spec: SloSpec):
        self.kernel = kernel
        self.spec = spec
        self.started_at = kernel.now
        self.submitted = 0
        # Live window records, sorted by completion time, plus a parallel
        # float list of those completion times so out-of-order stragglers
        # can be placed by binary search instead of a linear scan.
        self._window: list[RequestRecord] = []
        self._ctimes: list[float] = []
        # Rolling-window aggregates (maintained by _window_add/_remove).
        self._w_ok = 0
        self._w_errors = 0
        self._w_good = 0
        self._w_tokens = 0
        self._w_ttft = LogHistogram()
        self._w_e2e = LogHistogram()
        self._w_session = 0
        self._w_cache_hits = 0
        # Whole-run accumulators.
        self.completed = 0
        self.errors = 0
        self.good = 0
        self.output_tokens = 0
        self._run_ttft = LogHistogram()
        self._run_e2e = LogHistogram()
        self.per_tenant: dict[str, TenantStats] = {}
        # Session-turn accumulators (all zero for single-shot traffic).
        self.session_requests = 0       # ok requests with turn >= 1
        self.cache_hit_requests = 0     # of those, cached_tokens > 0
        self.cached_tokens = 0
        self.session_prompt_tokens = 0
        self._turn_stats = {
            "first": _TurnTtft(), "later": _TurnTtft()}
        # Per-serving-path TTFT aggregates (unified vs disagg); only
        # reported when a non-unified path showed up.
        self._path_stats: dict[str, _TurnTtft] = {}
        self.kv_transfers = 0           # ok requests that paid a handoff
        self.kv_transfer_s = 0.0

    # -- ingestion --------------------------------------------------------------

    def note_submitted(self, n: int = 1) -> None:
        self.submitted += n

    def is_good(self, record: RequestRecord) -> bool:
        return (record.ok and record.ttft <= self.spec.ttft_target
                and record.latency <= self.spec.e2e_target)

    def observe(self, record: RequestRecord) -> None:
        window = self._window
        ctimes = self._ctimes
        completed = record.completed
        if not ctimes or completed >= ctimes[-1]:
            window.append(record)
            ctimes.append(completed)
        else:
            # Straggler from a concurrent replica completing out of
            # order: insert in completion order so trimming by the
            # (sorted) front can never be blocked by a late record
            # parked ahead of older ones.  bisect_right keeps FIFO
            # order among equal completion times, matching the old
            # backward scan, at O(log n) compares per straggler.
            idx = bisect_right(ctimes, completed)
            window.insert(idx, record)
            ctimes.insert(idx, completed)
        self._window_add(record)
        self._trim(ctimes[-1])
        tenant = self.per_tenant.setdefault(record.tenant, TenantStats())
        if record.ok:
            self.completed += 1
            tenant.completed += 1
            self.output_tokens += record.output_tokens
            tenant.output_tokens += record.output_tokens
            self._run_ttft.add(record.ttft)
            self._run_e2e.add(record.latency)
            if record.turn >= 1:
                self.session_requests += 1
                self.cached_tokens += record.cached_tokens
                self.session_prompt_tokens += record.prompt_tokens
                if record.cached_tokens > 0:
                    self.cache_hit_requests += 1
                key = "first" if record.turn == 1 else "later"
                self._turn_stats[key].add(record.ttft)
            self._path_stats.setdefault(
                record.path, _TurnTtft()).add(record.ttft)
            if record.kv_transfer_s > 0:
                self.kv_transfers += 1
                self.kv_transfer_s += record.kv_transfer_s
        else:
            self.errors += 1
            tenant.errors += 1
        if self.is_good(record):
            self.good += 1
            tenant.good += 1

    def _window_add(self, record: RequestRecord) -> None:
        if record.ok:
            self._w_ok += 1
            self._w_tokens += record.output_tokens
            self._w_ttft.add(record.ttft)
            self._w_e2e.add(record.latency)
            if record.turn >= 1:
                self._w_session += 1
                if record.cached_tokens > 0:
                    self._w_cache_hits += 1
        else:
            self._w_errors += 1
        if self.is_good(record):
            self._w_good += 1

    def _window_remove(self, record: RequestRecord) -> None:
        if record.ok:
            self._w_ok -= 1
            self._w_tokens -= record.output_tokens
            self._w_ttft.remove(record.ttft)
            self._w_e2e.remove(record.latency)
            if record.turn >= 1:
                self._w_session -= 1
                if record.cached_tokens > 0:
                    self._w_cache_hits -= 1
        else:
            self._w_errors -= 1
        if self.is_good(record):
            self._w_good -= 1

    def _trim(self, now: float) -> None:
        floor = now - self.spec.window
        ctimes = self._ctimes
        aged = bisect_left(ctimes, floor)
        if aged:
            window = self._window
            for i in range(aged):
                self._window_remove(window[i])
            del window[:aged]
            del ctimes[:aged]

    # -- views ------------------------------------------------------------------

    def snapshot(self, at: float | None = None) -> SloSnapshot:
        """The rolling-window view right now (or at ``at``).

        Empty windows return the vacuously-healthy defaults documented
        on :class:`SloSnapshot`; every field is always a finite number.
        Both the reported percentiles and the ``slo_met`` gate come from
        the *same* :class:`~repro.fleet.stats.LogHistogram` estimator,
        so they can never disagree about where a percentile sits.

        ``at`` lets the fleet fast-forward path take the snapshot a
        monitor tick *would have taken* at a skipped timestamp; it must
        not precede the newest observed completion.
        """
        now = self.kernel.now if at is None else at
        self._trim(now)
        snap = SloSnapshot(time=now, window=self.spec.window)
        samples = self._w_ok + self._w_errors
        if samples == 0:
            return snap
        span = min(self.spec.window, max(now - self.started_at, 1e-9))
        snap.samples = samples
        snap.completions = self._w_ok
        snap.errors = self._w_errors
        snap.error_rate = self._w_errors / samples
        snap.throughput_rps = self._w_ok / span
        snap.goodput_rps = self._w_good / span
        snap.output_tok_per_s = self._w_tokens / span
        snap.attainment = self._w_good / samples
        p = self.spec.percentile
        ttft_q = self._w_ttft.quantiles((50.0, p, 95.0, 99.0))
        e2e_q = self._w_e2e.quantiles((50.0, p, 95.0, 99.0))
        snap.ttft_p50, ttft_at_p, snap.ttft_p95, snap.ttft_p99 = ttft_q
        snap.e2e_p50, e2e_at_p, snap.e2e_p95, snap.e2e_p99 = e2e_q
        snap.slo_met = (snap.error_rate <= self.spec.max_error_rate
                        and ttft_at_p <= self.spec.ttft_target
                        and e2e_at_p <= self.spec.e2e_target)
        snap.session_samples = self._w_session
        if self._w_session:
            snap.cache_hit_rate = self._w_cache_hits / self._w_session
        return snap

    def report(self) -> SloReport:
        turns = cache = paths = None
        if any(name != "unified" for name in self._path_stats):
            paths = {
                "ttft": {name: stats.to_json()
                         for name, stats in sorted(self._path_stats.items())},
                "kv_transfers": self.kv_transfers,
                "kv_transfer_s": round(self.kv_transfer_s, 3),
            }
        if self.session_requests:
            turns = {key: stats.to_json()
                     for key, stats in self._turn_stats.items()}
            cache = {
                "session_requests": self.session_requests,
                "hits": self.cache_hit_requests,
                "hit_rate": round(
                    self.cache_hit_requests / self.session_requests, 4),
                "cached_tokens": self.cached_tokens,
                "prompt_tokens": self.session_prompt_tokens,
                "cached_token_ratio": round(
                    self.cached_tokens / self.session_prompt_tokens, 4)
                if self.session_prompt_tokens else 0.0,
            }
        return SloReport(
            spec=self.spec,
            duration=self.kernel.now - self.started_at,
            submitted=self.submitted,
            completed=self.completed,
            errors=self.errors,
            good=self.good,
            output_tokens=self.output_tokens,
            ttft_percentiles=self._run_ttft.percentile_dict(),
            e2e_percentiles=self._run_e2e.percentile_dict(),
            per_tenant=dict(self.per_tenant),
            turns=turns,
            cache=cache,
            paths=paths,
        )
