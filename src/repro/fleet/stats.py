"""Streaming statistics for the fleet hot path (compatibility shim).

The :class:`LogHistogram` estimator moved to :mod:`repro.obs.stats` so
the observability layer — which sits *below* the simkernel and every
serving component — can back its registry histograms with it without an
import cycle.  Fleet consumers (SLO tracker, reports) keep importing it
from here.
"""

from __future__ import annotations

from ..obs.stats import LogHistogram as LogHistogram
from ..obs.stats import QUANTILE_KEYS as QUANTILE_KEYS

__all__ = ["LogHistogram", "QUANTILE_KEYS"]
