"""Open-loop traffic generation: arrival schedules and tenant mixes.

The paper's evaluation is closed-loop — N workers each keep one request
in flight (``--max-concurrency``).  Production traffic is open-loop: users
arrive whether or not the fleet keeps up.  This module provides arrival
*schedules* (time-varying rate functions sampled by Poisson thinning) and
weighted multi-tenant request mixes over the ShareGPT sampler, all driven
by the simkernel's named RNG streams so every scenario is reproducible
from its seed alone.

Schedules compose: a :class:`FlashCrowdSchedule` wraps any inner schedule
and multiplies its rate during a burst window — a diurnal day with a flash
crowd is ``FlashCrowdSchedule(DiurnalSchedule(...), ...)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterator

import numpy as np

from ..bench.sharegpt import SampledRequest, ShareGptSampler
from ..errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover
    from ..simkernel import SimKernel

DAY = 86400.0


class ArrivalSchedule:
    """A time-varying arrival-rate function, sampled by thinning.

    Subclasses implement :meth:`rate` (instantaneous requests/second at
    simulated time ``t``) and :meth:`peak_rate` (a tight upper bound used
    as the thinning envelope).
    """

    def rate(self, t: float) -> float:  # pragma: no cover - interface
        raise NotImplementedError

    def peak_rate(self) -> float:  # pragma: no cover - interface
        raise NotImplementedError

    def arrivals(self, rng: np.random.Generator, start: float,
                 horizon: float) -> Iterator[float]:
        """Yield absolute arrival times in ``[start, start + horizon)``.

        Non-homogeneous Poisson process via Lewis-Shedler thinning: draw
        candidate arrivals at the peak rate, accept each with probability
        ``rate(t) / peak``.
        """
        peak = self.peak_rate()
        if peak <= 0:
            raise ConfigurationError("schedule peak rate must be positive")
        t = start
        end = start + horizon
        while True:
            t += rng.exponential(1.0 / peak)
            if t >= end:
                return
            if rng.random() * peak <= self.rate(t):
                yield t

    def mean_rate(self, start: float = 0.0, horizon: float = DAY,
                  samples: int = 1440) -> float:
        """Numerical average of :meth:`rate` (sizing helper).

        Degenerate inputs are rejected up front — ``np.mean`` over zero
        samples would silently return NaN.
        """
        if horizon <= 0 or samples < 1:
            raise ConfigurationError(
                "mean_rate needs horizon > 0 and samples >= 1")
        ts = np.linspace(start, start + horizon, samples, endpoint=False)
        return float(np.mean([self.rate(t) for t in ts]))


@dataclass(frozen=True)
class PoissonSchedule(ArrivalSchedule):
    """Homogeneous Poisson arrivals at a constant rate (req/s)."""

    rate_rps: float

    def __post_init__(self):
        if self.rate_rps <= 0:
            raise ConfigurationError("rate_rps must be positive")

    def rate(self, t: float) -> float:
        return self.rate_rps

    def peak_rate(self) -> float:
        return self.rate_rps


@dataclass(frozen=True)
class DiurnalSchedule(ArrivalSchedule):
    """Sinusoidal day/night cycle between ``base_rps`` and ``peak_rps``.

    The rate peaks at ``peak_hour`` (simulated clock, hours) and bottoms
    out half a period later — the classic interactive-traffic diurnal.
    """

    base_rps: float
    peak_rps: float
    period: float = DAY
    peak_hour: float = 14.0

    def __post_init__(self):
        if not (0 < self.base_rps <= self.peak_rps):
            raise ConfigurationError(
                "need 0 < base_rps <= peak_rps "
                f"(got {self.base_rps}, {self.peak_rps})")
        if self.period <= 0:
            raise ConfigurationError("period must be positive")

    def rate(self, t: float) -> float:
        phase = 2.0 * math.pi * (t - self.peak_hour * 3600.0) / self.period
        blend = 0.5 * (1.0 + math.cos(phase))  # 1 at peak_hour, 0 opposite
        return self.base_rps + (self.peak_rps - self.base_rps) * blend

    def peak_rate(self) -> float:
        return self.peak_rps


@dataclass(frozen=True)
class FlashCrowdSchedule(ArrivalSchedule):
    """A burst overlay: multiply an inner schedule during a window.

    The multiplier ramps linearly over ``ramp`` seconds at both edges —
    flash crowds build in minutes, not instantaneously.
    """

    inner: ArrivalSchedule
    start: float
    duration: float
    multiplier: float
    ramp: float = 120.0

    def __post_init__(self):
        if self.multiplier < 1.0:
            raise ConfigurationError("flash multiplier must be >= 1")
        if self.duration <= 0 or self.ramp < 0:
            raise ConfigurationError("bad flash window")

    def factor(self, t: float) -> float:
        dt = t - self.start
        if dt < 0 or dt > self.duration:
            return 1.0
        edge = min(dt, self.duration - dt)
        if self.ramp > 0 and edge < self.ramp:
            return 1.0 + (self.multiplier - 1.0) * edge / self.ramp
        return self.multiplier

    def rate(self, t: float) -> float:
        return self.inner.rate(t) * self.factor(t)

    def peak_rate(self) -> float:
        return self.inner.peak_rate() * self.multiplier

    def arrivals(self, rng: np.random.Generator, start: float,
                 horizon: float) -> Iterator[float]:
        """Piecewise thinning: only the burst window pays the multiplied
        envelope, so a short flash on a long day does not reject
        ``multiplier``-fold candidates for the whole horizon."""
        end = start + horizon
        flash_start, flash_end = self.start, self.start + self.duration
        inner_peak = self.inner.peak_rate()
        segments = (
            (start, min(end, flash_start), inner_peak),
            (max(start, flash_start), min(end, flash_end),
             inner_peak * self.multiplier),
            (max(start, flash_end), end, inner_peak),
        )
        for seg_start, seg_end, envelope in segments:
            if seg_start >= seg_end:
                continue
            t = seg_start
            while True:
                t += rng.exponential(1.0 / envelope)
                if t >= seg_end:
                    break
                if rng.random() * envelope <= self.rate(t):
                    yield t


@dataclass(frozen=True)
class Tenant:
    """One traffic class: a name, a share of arrivals, and its workload.

    ``sampler_kw`` feeds :class:`~repro.bench.sharegpt.ShareGptSampler`
    (e.g. ``max_total_tokens``) so tenants can differ in request shape —
    short interactive chats vs long batch-analytics completions.
    """

    name: str
    weight: float
    sampler_kw: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.weight <= 0:
            raise ConfigurationError(f"tenant {self.name!r} weight <= 0")


class TenantMix:
    """Weighted multi-tenant request source over ShareGPT sampling.

    Each tenant draws lengths from its *own* named RNG stream, so adding
    a tenant never perturbs another tenant's request sequence.
    """

    def __init__(self, kernel: "SimKernel", tenants: list[Tenant],
                 stream_prefix: str = "fleet.tenant"):
        if not tenants:
            raise ConfigurationError("need at least one tenant")
        names = [t.name for t in tenants]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate tenant names in {names}")
        self.tenants = list(tenants)
        total = sum(t.weight for t in tenants)
        self._cumulative = np.cumsum([t.weight / total for t in tenants])
        self._samplers = {
            t.name: ShareGptSampler(
                kernel.rng.stream(f"{stream_prefix}.{t.name}"),
                **t.sampler_kw)
            for t in tenants}

    @classmethod
    def single(cls, kernel: "SimKernel", name: str = "default",
               **sampler_kw) -> "TenantMix":
        return cls(kernel, [Tenant(name, 1.0, sampler_kw)])

    def draw(self, rng: np.random.Generator) -> tuple[str, SampledRequest]:
        """Pick a tenant by weight and sample one request from it."""
        idx = int(np.searchsorted(self._cumulative, rng.random()))
        tenant = self.tenants[min(idx, len(self.tenants) - 1)]
        sample = self._samplers[tenant.name].sample(1)[0]
        return tenant.name, sample


class TrafficGenerator:
    """Drives an open-loop request stream into a submit callback.

    ``submit(tenant_name, sample)`` must be non-blocking (fire-and-forget:
    the fleet spawns one process per request) — the generator never waits
    for completions, only for the next arrival.
    """

    def __init__(self, kernel: "SimKernel", schedule: ArrivalSchedule,
                 mix: TenantMix,
                 submit: Callable[[str, SampledRequest], None],
                 stream: str = "fleet.arrivals"):
        self.kernel = kernel
        self.schedule = schedule
        self.mix = mix
        self.submit = submit
        self.rng = kernel.rng.stream(stream)
        self.generated = 0

    def run(self, horizon: float):
        """Generator process: emit arrivals for ``horizon`` seconds."""
        kernel = self.kernel
        start = kernel.now
        for t in self.schedule.arrivals(self.rng, start, horizon):
            if t > kernel.now:
                yield kernel.timeout(t - kernel.now)
            tenant, sample = self.mix.draw(self.rng)
            self.submit(tenant, sample)
            self.generated += 1
            if self.generated % 1000 == 0:
                kernel.trace.emit("fleet.traffic", generated=self.generated,
                                  rate=round(self.schedule.rate(kernel.now),
                                             3))
        return self.generated
