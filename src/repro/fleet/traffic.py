"""Open-loop traffic generation: arrival schedules and tenant mixes.

The paper's evaluation is closed-loop — N workers each keep one request
in flight (``--max-concurrency``).  Production traffic is open-loop: users
arrive whether or not the fleet keeps up.  This module provides arrival
*schedules* (time-varying rate functions sampled by Poisson thinning) and
weighted multi-tenant request mixes over the ShareGPT sampler, all driven
by the simkernel's named RNG streams so every scenario is reproducible
from its seed alone.

Schedules compose: a :class:`FlashCrowdSchedule` wraps any inner schedule
and multiplies its rate during a burst window — a diurnal day with a flash
crowd is ``FlashCrowdSchedule(DiurnalSchedule(...), ...)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from collections.abc import Callable, Iterator
from typing import TYPE_CHECKING

import numpy as np

from ..bench.sharegpt import SampledRequest, ShareGptSampler
from ..errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover
    from ..simkernel import SimKernel

DAY = 86400.0

#: Candidate arrivals drawn per vectorized RNG call during thinning.
THINNING_BATCH = 1024


def _thin_blocks(schedule: ArrivalSchedule, rng: np.random.Generator,
                 start: float, end: float, envelope: float,
                 batch: int = THINNING_BATCH) -> Iterator[list[float]]:
    """Lewis-Shedler thinning over ``[start, end)``, yielding *blocks*.

    The hot path of every fleet scenario: instead of two scalar RNG
    calls (gap + accept draw) per candidate event, candidates are drawn
    ``batch`` at a time with vectorized exponential/uniform draws and the
    acceptance test evaluates :meth:`ArrivalSchedule.rate_array` once per
    batch.  Yields the accepted times of each candidate batch as an
    ascending list (empty batches are skipped), so consumers can do
    per-block work — the fleet fast-forward path draws one vectorized
    tenant/length batch per block.  Flattened, the blocks are exactly
    the per-value stream :func:`_thin_batched` always produced, from the
    identical RNG call sequence.
    """
    if envelope <= 0:
        raise ConfigurationError("schedule peak rate must be positive")
    t = start
    scale = 1.0 / envelope
    while t < end:
        gaps = rng.exponential(scale, size=batch)
        accepts = rng.random(batch)
        times = t + np.cumsum(gaps)
        t = float(times[-1])
        keep = accepts * envelope <= schedule.rate_array(times)
        accepted = times[keep & (times < end)]
        if accepted.size:
            yield accepted.tolist()


def _thin_batched(schedule: ArrivalSchedule, rng: np.random.Generator,
                  start: float, end: float, envelope: float,
                  batch: int = THINNING_BATCH) -> Iterator[float]:
    """Per-value view of :func:`_thin_blocks` (ascending floats)."""
    for block in _thin_blocks(schedule, rng, start, end, envelope, batch):
        yield from block


class ArrivalSchedule:
    """A time-varying arrival-rate function, sampled by thinning.

    Subclasses implement :meth:`rate` (instantaneous requests/second at
    simulated time ``t``) and :meth:`peak_rate` (a tight upper bound used
    as the thinning envelope); overriding :meth:`rate_array` with a
    vectorized form keeps batched thinning off the per-event Python path.
    """

    def rate(self, t: float) -> float:  # pragma: no cover - interface
        raise NotImplementedError

    def peak_rate(self) -> float:  # pragma: no cover - interface
        raise NotImplementedError

    def rate_array(self, ts: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`rate`; subclasses override with pure numpy."""
        return np.fromiter((self.rate(float(t)) for t in ts),
                           dtype=float, count=len(ts))

    def arrivals(self, rng: np.random.Generator, start: float,
                 horizon: float) -> Iterator[float]:
        """Yield absolute arrival times in ``[start, start + horizon)``.

        Non-homogeneous Poisson process via batched Lewis-Shedler
        thinning: candidates are drawn at the peak rate in vectorized
        blocks, each accepted with probability ``rate(t) / peak``.
        """
        for block in self.arrival_blocks(rng, start, horizon):
            yield from block

    def arrival_blocks(self, rng: np.random.Generator, start: float,
                       horizon: float) -> Iterator[list[float]]:
        """Block view of :meth:`arrivals`: one list per candidate batch.

        Same RNG call sequence, same accepted times — the block grouping
        is the only difference, and it is what lets the traffic
        generator batch its per-arrival tenant and length draws.
        """
        yield from _thin_blocks(self, rng, start, start + horizon,
                                self.peak_rate())

    def mean_rate(self, start: float = 0.0, horizon: float = DAY,
                  samples: int = 1440) -> float:
        """Numerical average of :meth:`rate` (sizing helper).

        Degenerate inputs are rejected up front — ``np.mean`` over zero
        samples would silently return NaN.
        """
        if horizon <= 0 or samples < 1:
            raise ConfigurationError(
                "mean_rate needs horizon > 0 and samples >= 1")
        ts = np.linspace(start, start + horizon, samples, endpoint=False)
        return float(np.mean([self.rate(t) for t in ts]))


@dataclass(frozen=True)
class PoissonSchedule(ArrivalSchedule):
    """Homogeneous Poisson arrivals at a constant rate (req/s)."""

    rate_rps: float

    def __post_init__(self):
        if self.rate_rps <= 0:
            raise ConfigurationError("rate_rps must be positive")

    def rate(self, t: float) -> float:
        return self.rate_rps

    def rate_array(self, ts: np.ndarray) -> np.ndarray:
        return np.full(len(ts), self.rate_rps)

    def peak_rate(self) -> float:
        return self.rate_rps


@dataclass(frozen=True)
class DiurnalSchedule(ArrivalSchedule):
    """Sinusoidal day/night cycle between ``base_rps`` and ``peak_rps``.

    The rate peaks at ``peak_hour`` (simulated clock, hours) and bottoms
    out half a period later — the classic interactive-traffic diurnal.
    """

    base_rps: float
    peak_rps: float
    period: float = DAY
    peak_hour: float = 14.0

    def __post_init__(self):
        if not (0 < self.base_rps <= self.peak_rps):
            raise ConfigurationError(
                "need 0 < base_rps <= peak_rps "
                f"(got {self.base_rps}, {self.peak_rps})")
        if self.period <= 0:
            raise ConfigurationError("period must be positive")

    def rate(self, t: float) -> float:
        phase = 2.0 * math.pi * (t - self.peak_hour * 3600.0) / self.period
        blend = 0.5 * (1.0 + math.cos(phase))  # 1 at peak_hour, 0 opposite
        return self.base_rps + (self.peak_rps - self.base_rps) * blend

    def rate_array(self, ts: np.ndarray) -> np.ndarray:
        phase = 2.0 * np.pi * (ts - self.peak_hour * 3600.0) / self.period
        blend = 0.5 * (1.0 + np.cos(phase))
        return self.base_rps + (self.peak_rps - self.base_rps) * blend

    def peak_rate(self) -> float:
        return self.peak_rps


@dataclass(frozen=True)
class PulseSchedule(ArrivalSchedule):
    """Periodic on/off bursts: ``rate_rps`` during the first
    ``duty``-fraction of every ``period``, zero in between.

    The batch-ingest / nightly-report arrival shape: long silent gaps
    punctuated by dense bursts.  The zero-rate gaps are what the fleet
    fast-forward path collapses — thinning rejects every candidate in a
    gap, so whole idle stretches cost no simulated events at all.
    """

    rate_rps: float
    period: float = DAY
    duty: float = 0.0125

    def __post_init__(self):
        if self.rate_rps <= 0:
            raise ConfigurationError("rate_rps must be positive")
        if self.period <= 0:
            raise ConfigurationError("period must be positive")
        if not (0 < self.duty <= 1):
            raise ConfigurationError("duty must be in (0, 1]")

    def rate(self, t: float) -> float:
        return (self.rate_rps
                if (t % self.period) < self.duty * self.period else 0.0)

    def rate_array(self, ts: np.ndarray) -> np.ndarray:
        on = np.mod(ts, self.period) < self.duty * self.period
        return np.where(on, self.rate_rps, 0.0)

    def peak_rate(self) -> float:
        return self.rate_rps


@dataclass(frozen=True)
class FlashCrowdSchedule(ArrivalSchedule):
    """A burst overlay: multiply an inner schedule during a window.

    The multiplier ramps linearly over ``ramp`` seconds at both edges —
    flash crowds build in minutes, not instantaneously.
    """

    inner: ArrivalSchedule
    start: float
    duration: float
    multiplier: float
    ramp: float = 120.0

    def __post_init__(self):
        if self.multiplier < 1.0:
            raise ConfigurationError("flash multiplier must be >= 1")
        if self.duration <= 0 or self.ramp < 0:
            raise ConfigurationError("bad flash window")

    def factor(self, t: float) -> float:
        dt = t - self.start
        if dt < 0 or dt > self.duration:
            return 1.0
        edge = min(dt, self.duration - dt)
        if self.ramp > 0 and edge < self.ramp:
            return 1.0 + (self.multiplier - 1.0) * edge / self.ramp
        return self.multiplier

    def rate(self, t: float) -> float:
        return self.inner.rate(t) * self.factor(t)

    def rate_array(self, ts: np.ndarray) -> np.ndarray:
        dt = ts - self.start
        inside = (dt >= 0) & (dt <= self.duration)
        if self.ramp > 0:
            edge = np.minimum(dt, self.duration - dt)
            ramped = 1.0 + (self.multiplier - 1.0) * np.minimum(
                edge / self.ramp, 1.0)
            factor = np.where(inside, ramped, 1.0)
        else:
            factor = np.where(inside, self.multiplier, 1.0)
        return self.inner.rate_array(ts) * factor

    def peak_rate(self) -> float:
        return self.inner.peak_rate() * self.multiplier

    def arrival_blocks(self, rng: np.random.Generator, start: float,
                       horizon: float) -> Iterator[list[float]]:
        """Piecewise batched thinning: only the burst window pays the
        multiplied envelope, so a short flash on a long day does not
        reject ``multiplier``-fold candidates for the whole horizon."""
        end = start + horizon
        flash_start, flash_end = self.start, self.start + self.duration
        inner_peak = self.inner.peak_rate()
        segments = (
            (start, min(end, flash_start), inner_peak),
            (max(start, flash_start), min(end, flash_end),
             inner_peak * self.multiplier),
            (max(start, flash_end), end, inner_peak),
        )
        for seg_start, seg_end, envelope in segments:
            if seg_start >= seg_end:
                continue
            yield from _thin_blocks(self, rng, seg_start, seg_end, envelope)


@dataclass(frozen=True)
class Tenant:
    """One traffic class: a name, a share of arrivals, and its workload.

    ``sampler_kw`` feeds :class:`~repro.bench.sharegpt.ShareGptSampler`
    (e.g. ``max_total_tokens``) so tenants can differ in request shape —
    short interactive chats vs long batch-analytics completions.
    """

    name: str
    weight: float
    sampler_kw: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.weight <= 0:
            raise ConfigurationError(f"tenant {self.name!r} weight <= 0")


class TenantMix:
    """Weighted multi-tenant request source over ShareGPT sampling.

    Each tenant draws lengths from its *own* named RNG stream, so adding
    a tenant never perturbs another tenant's request sequence.
    """

    def __init__(self, kernel: SimKernel, tenants: list[Tenant],
                 stream_prefix: str = "fleet.tenant"):
        if not tenants:
            raise ConfigurationError("need at least one tenant")
        names = [t.name for t in tenants]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate tenant names in {names}")
        self.tenants = list(tenants)
        total = sum(t.weight for t in tenants)
        self._cumulative = np.cumsum([t.weight / total for t in tenants])
        self._samplers = {
            t.name: ShareGptSampler(
                kernel.rng.stream(f"{stream_prefix}.{t.name}"),
                **t.sampler_kw)
            for t in tenants}

    @classmethod
    def single(cls, kernel: SimKernel, name: str = "default",
               **sampler_kw) -> TenantMix:
        return cls(kernel, [Tenant(name, 1.0, sampler_kw)])

    def pick(self, rng: np.random.Generator) -> Tenant:
        """Pick a tenant by weight (no request sampled — the session
        workload draws its own lengths from per-session streams)."""
        idx = int(np.searchsorted(self._cumulative, rng.random()))
        return self.tenants[min(idx, len(self.tenants) - 1)]

    def draw(self, rng: np.random.Generator) -> tuple[str, SampledRequest]:
        """Pick a tenant by weight and sample one request from it."""
        tenant = self.pick(rng)
        sample = self._samplers[tenant.name].sample(1)[0]
        return tenant.name, sample

    def draw_block(self, rng: np.random.Generator,
                   count: int) -> list[tuple[str, SampledRequest]]:
        """``count`` :meth:`draw` calls, batched, bit-identical streams.

        The pick draws come from one vectorized ``rng.random(count)``
        (numpy consumes the bit stream exactly as ``count`` scalar
        calls would), and each tenant's length pairs come from one
        :meth:`~repro.bench.sharegpt.ShareGptSampler.sample_pairs` call
        on its own stream — tenant streams never interleave, so
        grouping per tenant preserves every stream verbatim.
        """
        if count < 1:
            raise ConfigurationError("need at least one draw")
        picks = rng.random(count)
        last = len(self.tenants) - 1
        idxs = np.minimum(np.searchsorted(self._cumulative, picks), last)
        names = [self.tenants[i].name for i in idxs]
        wanted: dict[str, int] = {}
        for name in names:
            wanted[name] = wanted.get(name, 0) + 1
        batches = {name: iter(self._samplers[name].sample_pairs(n))
                   for name, n in wanted.items()}
        return [(name, next(batches[name])) for name in names]


class TrafficGenerator:
    """Drives an open-loop request stream into a submit callback.

    ``submit(tenant_name, sample)`` must be non-blocking (fire-and-forget:
    the fleet spawns one process per request) — the generator never waits
    for completions, only for the next arrival.
    """

    def __init__(self, kernel: SimKernel, schedule: ArrivalSchedule,
                 mix: TenantMix,
                 submit: Callable[[str, SampledRequest], None],
                 stream: str = "fleet.arrivals", fast: bool = True):
        self.kernel = kernel
        self.schedule = schedule
        self.mix = mix
        self.submit = submit
        self.rng = kernel.rng.stream(stream)
        self.generated = 0
        self.fast = fast
        #: the next pending arrival time, published *before* the sleep
        #: toward it — the fleet fast-forward governor's bound on how far
        #: the periodic control loops may skip.  ``inf`` outside a run.
        self.next_arrival = math.inf
        self.active = False

    def run(self, horizon: float):
        """Generator process: emit arrivals for ``horizon`` seconds."""
        if not self.fast:
            yield from self._run_stepping(horizon)
            return self.generated
        kernel = self.kernel
        start = kernel.now
        self.active = True
        try:
            for block in self.schedule.arrival_blocks(self.rng, start,
                                                      horizon):
                # One vectorized tenant/length batch per thinning block:
                # RNG streams are consumed in exactly the per-arrival
                # order (picks follow the block's candidate draws;
                # tenant streams never interleave with anything else).
                entries = self.mix.draw_block(self.rng, len(block))
                for t, (tenant, sample) in zip(block, entries, strict=True):
                    self.next_arrival = t
                    if t > kernel.now:
                        yield kernel.timeout(t - kernel.now)
                    self.submit(tenant, sample)
                    self.generated += 1
                    if self.generated % 1000 == 0:
                        kernel.trace.emit(
                            "fleet.traffic", generated=self.generated,
                            rate=round(self.schedule.rate(kernel.now), 3))
        finally:
            self.active = False
            self.next_arrival = math.inf
        return self.generated

    def _run_stepping(self, horizon: float):
        """The per-arrival reference path (``fast=False``): one scalar
        tenant pick and one scalar length draw per arrival."""
        kernel = self.kernel
        start = kernel.now
        self.active = True
        try:
            for t in self.schedule.arrivals(self.rng, start, horizon):
                self.next_arrival = t
                if t > kernel.now:
                    yield kernel.timeout(t - kernel.now)
                tenant, sample = self.mix.draw(self.rng)
                self.submit(tenant, sample)
                self.generated += 1
                if self.generated % 1000 == 0:
                    kernel.trace.emit(
                        "fleet.traffic", generated=self.generated,
                        rate=round(self.schedule.rate(kernel.now), 3))
        finally:
            self.active = False
            self.next_arrival = math.inf
