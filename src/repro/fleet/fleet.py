"""The Fleet: router + elastic vLLM replicas + SLO tracking, one handle.

A :class:`Fleet` ties together everything a production serving operator
runs: N vLLM replicas deployed through the unified
:class:`~repro.core.deployer.Deployer` (so replicas can land on Slurm,
Flux, or OpenShift platforms interchangeably), one
:class:`~repro.services.router.LlmRouter` in front of them, an
:class:`~repro.fleet.autoscaler.Autoscaler` converging replica count to
load, and a :class:`~repro.fleet.slo.SloTracker` scoring every request
against the fleet's SLO.

``run_scenario()`` is the entry point: feed it an arrival schedule and a
tenant mix and it plays open-loop traffic against the fleet, autoscaling
as the day unfolds, and returns a :class:`FleetReport` scorecard.

Kubernetes replicas are registered with the router by their *pod node*
endpoint rather than the cluster ingress: every Helm release shares one
ingress frontend, and the router — living inside the site — can reach pod
hosts directly (the converged-site advantage the paper describes).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..cluster.platform import HPCPlatform, K8sPlatform
from ..containers.runtime import Container, RunOpts
from ..core.deployer import Deployment
from ..core.workflow import CaseStudyWorkflow
from ..errors import (APIError, ConfigurationError, ContainerCrash,
                      NetworkUnreachable, ReproError, StateError)
from ..k8s.objects import PodPhase
from ..net.http import HttpClient, lookup
from ..obs.alerts import AlertEvaluator, AlertRule, default_slo_rules
from ..obs.critical_path import CriticalPathAnalyzer
from ..obs.profile import profiler
from ..services.router import (LlmRouter, RouterConfig, RouterPolicy,
                               router_image)
from ..vllm.spec import RequestSpec
from .autoscaler import Autoscaler, AutoscalerConfig, ScaleEvent
from .slo import RequestRecord, SloSpec, SloTracker
from .traffic import ArrivalSchedule, TenantMix, TrafficGenerator

if TYPE_CHECKING:  # pragma: no cover
    from ..core.site import ConvergedSite
    from ..hardware.node import Node
    from ..sessions import SessionSpec


@dataclass(frozen=True)
class DisaggSpec:
    """Disaggregated prefill/decode serving shape for a fleet.

    When ``enabled``, the fleet runs two replica pools: a fixed pool of
    ``prefill_replicas`` engines in role ``prefill`` and an elastic
    decode pool (sized by ``Fleet.start(initial_replicas)`` and scaled
    by the autoscaler — decode capacity is what queues under load; the
    prefill pool is provisioned for the arrival rate up front).  The
    router dispatches each completion in two legs and the decode engine
    pays the KV handoff transfer over the fabric.
    """

    enabled: bool = False
    prefill_replicas: int = 1

    def __post_init__(self):
        if self.prefill_replicas < 1:
            raise ConfigurationError(
                "disagg needs at least one prefill replica")


@dataclass(frozen=True)
class FleetConfig:
    """What to serve, where replicas may land, and how hard to defend SLOs."""

    model: str
    tensor_parallel_size: int = 2
    platforms: tuple[str, ...] = ("hops",)
    router_platform: str = "hops"
    router_port: int = 4000
    policy: str = "least-outstanding"
    slo: SloSpec = field(default_factory=SloSpec)
    autoscaler: AutoscalerConfig = field(default_factory=AutoscalerConfig)
    client_host: str = ""            # default: router platform service host
    snapshot_interval: float = 120.0
    drain_timeout: float = 1800.0    # scenario-end settle budget
    #: extra ``vllm serve`` parameters applied to every replica deploy
    #: (e.g. ``{"enable_prefix_caching": True}`` for session fleets, or
    #: ``gpu_memory_utilization`` to sweep the KV-cache size).
    engine_params: dict = field(default_factory=dict)
    #: record per-request span trees during scenarios (arrive → route →
    #: queue/prefill/decode); digest lands in ``FleetReport.obs``.
    obs_spans: bool = True
    #: simulated seconds between metrics scrapes (0 disables the scraper).
    scrape_interval: float = 300.0
    #: evaluate SLO alert rules against the scraped series during
    #: scenarios (requires the scraper, i.e. ``scrape_interval > 0``);
    #: the firing timeline and its digest land in ``FleetReport.obs``.
    alerts: bool = True
    #: explicit rule set; empty means the stock
    #: :func:`~repro.obs.alerts.default_slo_rules` derived from ``slo``
    #: and ``scrape_interval``.
    alert_rules: tuple[AlertRule, ...] = ()
    #: build the end-of-run ``FleetReport.obs`` block (series counts,
    #: span/metrics/scrape digests).  Off, recording still happens but
    #: the one-shot reporting pass is skipped — overhead benches use
    #: this to time the serving day alone.
    obs_report: bool = True
    #: disaggregated prefill/decode serving (off by default: every
    #: replica is a unified engine serving whole requests).
    disagg: DisaggSpec = field(default_factory=DisaggSpec)
    #: fleet fast-forward: requests take an in-process lane that replays
    #: the routed HTTP path closed-form, and provably-idle periodic
    #: ticks (autoscaler, monitor, health passes) are slept through in
    #: one timeout.  Bit-identical to stepping by construction (see
    #: docs/performance.md); auto-disabled under chaos, armed fault
    #: plans, or disaggregated serving.  Set False to force the fully
    #: stepped path.
    fast_forward: bool = True

    def __post_init__(self):
        # Fail on an unknown policy where the config is built, not at
        # router-container start deep inside a scenario.
        RouterPolicy.coerce(self.policy)


@dataclass
class Replica:
    """One running vLLM backend owned by the fleet."""

    name: str
    platform_name: str
    deployment: Deployment
    backend_host: str
    backend_port: int
    #: disaggregation role the engine was deployed with (``unified``,
    #: ``prefill``, or ``decode``); mirrored to the router pool.
    role: str = "unified"

    @property
    def backend(self) -> tuple[str, int]:
        return self.backend_host, self.backend_port


@dataclass(frozen=True)
class TurnResult:
    """What one request (or session turn) looked like to its caller."""

    ok: bool
    ttft: float = 0.0
    latency: float = 0.0
    output_tokens: int = 0
    cached_tokens: int = 0
    error: str = ""


@dataclass
class FleetReport:
    """Scorecard of one scenario run."""

    label: str
    duration: float
    arrivals: int
    slo: object                      # SloReport
    scale_events: list[ScaleEvent]
    replica_timeline: list[tuple[float, int]]
    snapshots: list[dict] = field(default_factory=list)
    #: chaos-orchestrator resilience scorecard (None outside chaos runs)
    resilience: dict | None = None
    #: session-workload accounting (None for single-shot scenarios);
    #: when set, ``arrivals`` counts session *starts*, not requests.
    sessions: dict | None = None
    #: observability scorecard: span/metrics/scrape digests and counts
    #: (None when the scenario ran with observability fully off).
    obs: dict | None = None

    @property
    def peak_replicas(self) -> int:
        return max((n for _, n in self.replica_timeline), default=0)

    @property
    def final_replicas(self) -> int:
        return self.replica_timeline[-1][1] if self.replica_timeline else 0

    @property
    def replica_seconds(self) -> float:
        """Integral of replica count over the scenario: the cost metric.

        Campaign aggregates divide goodput by this to price resilience
        (how much extra capacity a chaos policy burns).
        """
        if not self.replica_timeline:
            return 0.0
        end = self.replica_timeline[0][0] + self.duration
        total = 0.0
        for i, (t, n) in enumerate(self.replica_timeline):
            t_next = (self.replica_timeline[i + 1][0]
                      if i + 1 < len(self.replica_timeline) else end)
            total += n * max(0.0, min(t_next, end) - t)
        return total

    def summary(self) -> str:
        hours = self.duration / 3600.0
        lines = [f"fleet scenario {self.label!r}: {self.arrivals} arrivals "
                 f"over {hours:.1f} h, replicas peak={self.peak_replicas} "
                 f"final={self.final_replicas}",
                 self.slo.summary(),
                 "  scale events:"]
        if not self.scale_events:
            lines.append("    (none)")
        for event in self.scale_events:
            lines.append(
                f"    [{event.time / 3600.0:6.2f} h] {event.action:9s} "
                f"{event.replicas_before}->{event.replicas_after}  "
                f"({event.reason})")
        return "\n".join(lines)

    def to_json(self) -> dict:
        out = {
            "label": self.label,
            "duration_s": round(self.duration, 1),
            "arrivals": self.arrivals,
            "peak_replicas": self.peak_replicas,
            "final_replicas": self.final_replicas,
            "replica_seconds": round(self.replica_seconds, 1),
            "slo": self.slo.to_json(),
            "scale_events": [e.row() for e in self.scale_events],
            "replica_timeline": [(round(t, 1), n)
                                 for t, n in self.replica_timeline],
            "snapshots": self.snapshots,
        }
        if self.resilience is not None:
            out["resilience"] = self.resilience
        if self.sessions is not None:
            out["sessions"] = self.sessions
        if self.obs is not None:
            out["obs"] = self.obs
        return out


class FleetFastForward:
    """Governor for the fleet's fast-forward machinery.

    Two independent, per-instant decisions:

    * :meth:`lane_ok` — may a request take the in-process fast lane
      (:meth:`Fleet._request_fast`) instead of the stepped HTTP hop
      chain?  The lane replays the routed path closed-form and is
      bit-identical only while no failover can occur, so it requires
      fast-forward enabled, no chaos orchestrator armed, unified (non
      disagg) serving, the profiler off, and every backend engine free
      of fault plans and crashes.
    * :meth:`quiet` — is the whole fleet provably idle, so the periodic
      control loops (autoscaler ticks, SLO snapshots, health passes)
      can skip ahead?  Skips are bounded by :meth:`arrival_bound` (the
      traffic generator publishes its next arrival time before
      sleeping) and the autoscaler's own
      :meth:`~repro.fleet.autoscaler.Autoscaler.quiet_action_bound`.

    Everything here is advisory: with ``FleetConfig.fast_forward``
    False (or any eligibility check failing) every consumer falls back
    to plain stepping.
    """

    def __init__(self, fleet: Fleet):
        self.fleet = fleet
        self.kernel = fleet.kernel
        #: set by the chaos orchestrator before it drives scenarios;
        #: faults attach mid-run there, which the lane must never race.
        self.chaos = False
        self.fast_requests = 0     # requests served through the lane
        self._traffic: TrafficGenerator | None = None
        self._engines: dict | None = None
        self._engines_epoch = -1

    # -- scenario lifecycle ----------------------------------------------------

    def begin(self, traffic: TrafficGenerator | None) -> None:
        """Arm for one scenario (None = ineligible traffic kind)."""
        self._traffic = traffic
        self._engines_epoch = -1

    def end(self) -> None:
        self._traffic = None

    # -- eligibility -----------------------------------------------------------

    @property
    def enabled(self) -> bool:
        config = self.fleet.config
        return (config.fast_forward and not self.chaos
                and not config.disagg.enabled and not profiler.enabled)

    def engines(self) -> dict | None:
        """(host, port) -> live LLMEngine behind each router backend.

        Cached per router pool epoch; returns None when any backend
        does not resolve to a vLLM engine (dead service, foreign app) —
        which simply disqualifies the fast lane.
        """
        router = self.fleet.router_app
        if router is None:
            return None
        if router._epoch != self._engines_epoch:
            fabric = self.fleet.site.fabric
            engines: dict | None = {}
            for b in router.backends:
                service = lookup(fabric, b.host, b.port)
                app = getattr(service, "handler", None)
                app = getattr(app, "__self__", None)
                engine = getattr(app, "engine", None)
                if engine is None:
                    engines = None
                    break
                engines[(b.host, b.port)] = engine
            self._engines = engines
            self._engines_epoch = router._epoch
        return self._engines

    def lane_ok(self) -> bool:
        """May the next request take the in-process fast lane?"""
        if not self.enabled:
            return False
        engines = self.engines()
        if not engines:
            return False
        for engine in engines.values():
            if engine.fault_plan is not None or engine.crashed is not None:
                return False
        return True

    def quiet(self) -> bool:
        """Is the fleet provably idle right now?

        True only when nothing is in flight anywhere — no open-loop
        request, no deploy, no scale action, every backend healthy with
        zero outstanding forwards, every engine's queues empty — *and*
        the lane preconditions hold (no armed faults), so the only
        upcoming events are periodic ticks and the next arrival.
        """
        if self._traffic is None or not self.lane_ok():
            return False
        fleet = self.fleet
        if fleet.inflight or fleet._pending_nodes:
            return False
        if fleet.autoscaler._scaling:
            return False
        for b in fleet.router_app.backends:
            if not b.healthy or b.outstanding or b.consecutive_failures:
                return False
        for engine in self.engines().values():
            if engine.running or engine.waiting:
                return False
        return True

    def arrival_bound(self) -> float:
        """Time of the next traffic arrival (+inf when none is known)."""
        traffic = self._traffic
        if traffic is None or not traffic.active:
            return math.inf
        return traffic.next_arrival

    def health_extra(self, interval: float) -> float:
        """Extra seconds the router's health loop may sleep past one
        ``interval``.

        Health passes over an all-healthy pool write nothing observable
        (the only state touched is resetting already-zero failure
        counters), so any number of them inside a provably-quiet window
        can be skipped outright; the pass resumes at the window's edge.
        """
        if not self.quiet():
            return 0.0
        bound = min(self.arrival_bound(),
                    self.fleet.autoscaler.quiet_action_bound())
        now = self.kernel.now
        if not math.isfinite(bound) or bound <= now + interval:
            return 0.0
        return bound - now - interval


class Fleet:
    """Deployments + router + autoscaler + SLO tracker, one lifecycle."""

    def __init__(self, site: ConvergedSite, config: FleetConfig):
        self.site = site
        self.config = config
        self.kernel = site.kernel
        self.wf = CaseStudyWorkflow(site)
        self.slo = SloTracker(site.kernel, config.slo)
        self.autoscaler = Autoscaler(self, config.autoscaler)
        self.ff = FleetFastForward(self)
        self.replicas: list[Replica] = []
        self.placements: list[tuple[str, str]] = []  # (replica, platform)
        self.replica_timeline: list[tuple[float, int]] = []
        self.snapshots: list[dict] = []
        self.inflight = 0
        self.router_container: Container | None = None
        self.router_app: LlmRouter | None = None
        self.router_host: str = ""
        self._next_id = 0
        self._next_platform = 0
        self._pending_nodes: set[str] = set()  # HPC deploys in flight
        self._client: HttpClient | None = None
        self._seeded = False
        self._scenario_ran = False
        #: alert evaluator of the current/last scenario (None when the
        #: scraper or alerting is off); chaos scoring reads its events.
        self.alerts: AlertEvaluator | None = None
        reg = self.kernel.obs.registry
        requests_total = reg.counter(
            "fleet_requests_total", "Requests issued through the router",
            labels=("outcome",))
        # Cached child handles: the per-request path increments a float,
        # never resolves a label set.
        self._c_req_ok = requests_total.labels(outcome="ok")
        self._c_req_err = requests_total.labels(outcome="error")
        reg.gauge("fleet_inflight", "Open-loop requests in flight") \
            .labels().set_function(lambda: self.inflight)
        reg.gauge("fleet_replicas", "Live vLLM replicas") \
            .labels().set_function(lambda: len(self.replicas))
        # Rolling-window SLO series, the raw material for the alert
        # rules.  All six share one snapshot per collection instant (a
        # scrape reads every gauge at the same kernel.now); snapshot()
        # itself only trims the window, which the next live observation
        # would do anyway, so scraping does not perturb the simulation.
        self._snap_cache: tuple[float, SloTracker, object] | None = None
        for name, help_text, fn in (
            ("fleet_slo_attainment", "Windowed fraction of good requests",
             lambda: self._slo_window().attainment),
            ("fleet_slo_error_rate", "Windowed error fraction",
             lambda: self._slo_window().error_rate),
            ("fleet_slo_ttft_p95_seconds", "Windowed p95 TTFT",
             lambda: self._slo_window().ttft_p95),
            ("fleet_slo_e2e_p95_seconds", "Windowed p95 E2E latency",
             lambda: self._slo_window().e2e_p95),
            ("fleet_slo_window_samples", "Requests in the SLO window",
             lambda: self._slo_window().samples),
            ("fleet_slo_met", "1 when the windowed SLO gate holds",
             lambda: float(self._slo_window().slo_met)),
        ):
            reg.gauge(name, help_text).labels().set_function(fn)

    def _slo_window(self):
        """The SLO snapshot at the current instant, computed once."""
        cache = self._snap_cache
        if (cache is None or cache[0] != self.kernel.now
                or cache[1] is not self.slo):
            cache = (self.kernel.now, self.slo, self.slo.snapshot())
            self._snap_cache = cache
        return cache[2]

    # -- bring-up ---------------------------------------------------------------

    def start(self, initial_replicas: int = 1):
        """Generator: seed artifacts, deploy replicas, start the router.

        Under a disagg config ``initial_replicas`` sizes the *decode*
        pool; the prefill pool is ``config.disagg.prefill_replicas``.
        """
        self._seed()
        if self.config.disagg.enabled:
            yield from self.add_replicas(
                self.config.disagg.prefill_replicas, role="prefill")
            yield from self.add_replicas(initial_replicas, role="decode")
        else:
            yield from self.add_replicas(initial_replicas)
        yield from self._start_router()
        client_host = (self.config.client_host
                       or self._router_platform().service_host)
        self._client = HttpClient(self.site.fabric, client_host)
        self.kernel.trace.emit(
            "fleet.started", replicas=len(self.replicas),
            router=f"{self.router_host}:{self.config.router_port}")

    def _router_platform(self) -> HPCPlatform:
        platform = self.site.platform(self.config.router_platform)
        if not isinstance(platform, HPCPlatform):
            raise StateError("the router runs podman-side; pick an HPC "
                             f"platform, not {self.config.router_platform!r}")
        return platform

    def _seed(self) -> None:
        if self._seeded:
            return
        self.site.gitlab.seed(router_image())
        seeded_s3 = False
        for name in self.config.platforms:
            platform = self.site.platform(name)
            if isinstance(platform, HPCPlatform):
                self.wf.admin_seed_model(self.config.model, name)
            elif not seeded_s3:
                self.wf.admin_seed_s3(self.config.model)
                seeded_s3 = True
        self._seeded = True

    def _start_router(self):
        platform = self._router_platform()
        node = self._router_node(platform)
        backends = ",".join(f"{r.backend_host}:{r.backend_port}:{r.role}"
                            for r in self.replicas)
        router_config = RouterConfig(policy=self.config.policy,
                                     port=self.config.router_port,
                                     disagg=self.config.disagg.enabled)
        opts = RunOpts(name="llm-router", network_host=True,
                       env={"BACKENDS": backends,
                            **router_config.to_env()})
        container = yield from platform.podman.run(
            node, router_image().ref, opts)
        yield container.ready
        self.router_container = container
        self.router_app = container.app
        self.router_host = node.hostname

    def _router_node(self, platform: HPCPlatform) -> Node:
        # Walk from the back so the deployer's front-first node preference
        # keeps GPU nodes clear of the router.
        for node in reversed(platform.nodes):
            if node.up and lookup(self.site.fabric, node.hostname,
                                  self.config.router_port) is None:
                return node
        raise StateError(f"no node on {platform.name!r} can host the router")

    # -- capacity ---------------------------------------------------------------

    def _free_slots(self, platform) -> int:
        tp = self.config.tensor_parallel_size
        if isinstance(platform, HPCPlatform):
            slots = 0
            for node in platform.nodes:
                if not node.up or node.gpus_free < tp:
                    continue
                port_busy = lookup(self.site.fabric, node.hostname,
                                   self.wf.package.service_port) is not None
                slots += 0 if port_busy else 1
            return slots
        committed: dict[str, int] = {}
        for pod in platform.cluster.api.list("Pod"):
            if pod.deleted or pod.node_name is None:
                continue
            committed[pod.node_name] = (committed.get(pod.node_name, 0)
                                        + pod.spec.total_gpus)
        return sum(
            1 for kn in platform.cluster.nodes
            if kn.node.up and
            kn.node.available_gpu_count
            - committed.get(kn.node.hostname, 0) >= tp)

    def _next_platform_with_capacity(self, reserved: dict[str, int]
                                     | None = None):
        """Next placement target, discounting slots already promised to
        other replicas of the same batch (``reserved``)."""
        names = self.config.platforms
        reserved = reserved or {}
        for offset in range(len(names)):
            name = names[(self._next_platform + offset) % len(names)]
            platform = self.site.platform(name)
            if self._free_slots(platform) - reserved.get(name, 0) > 0:
                self._next_platform = (self._next_platform + offset + 1) \
                    % len(names)
                return platform
        raise StateError(
            f"no capacity left on any of {list(names)} for "
            f"tp={self.config.tensor_parallel_size}")

    # -- replica lifecycle ------------------------------------------------------

    def add_replicas(self, count: int,
                     role: str | None = None) -> list[Replica]:
        """Generator: deploy ``count`` replicas concurrently; returns them.

        Placement for the whole batch is resolved against *remaining*
        capacity before anything is spawned (overcommitting a platform
        raises a clean StateError with nothing deployed), and every
        deploy settles — successes are tracked and registered even when
        a sibling fails mid-flight, so no replica can leak untracked.

        ``role`` defaults to ``decode`` under a disagg config (growth
        means decode capacity) and ``unified`` otherwise, so the
        autoscaler needs no disagg awareness.
        """
        kernel = self.kernel
        if role is None:
            role = "decode" if self.config.disagg.enabled else "unified"
        placements: list[tuple[object, str, "Node | None"]] = []
        reserved: dict[str, int] = {}
        reserved_nodes: set[str] = set()
        for _ in range(count):
            platform = self._next_platform_with_capacity(reserved)
            reserved[platform.name] = reserved.get(platform.name, 0) + 1
            self._next_id += 1
            node = None
            if isinstance(platform, HPCPlatform):
                # Resolve concrete nodes up front so two deploys — same
                # batch or a concurrent batch (autoscaler + supervisor) —
                # cannot race onto one node's service port.
                node = self.wf.deployer.pick_node(
                    platform,
                    {"tensor_parallel_size":
                     self.config.tensor_parallel_size},
                    service_port=self.wf.package.service_port,
                    exclude=reserved_nodes | self._pending_nodes)
                reserved_nodes.add(node.hostname)
            placements.append((platform, f"vllm-r{self._next_id}", node))
        self._pending_nodes |= reserved_nodes
        try:
            procs = [kernel.spawn(
                self._deploy_settled(platform, name, node, role),
                name=f"fleet:deploy:{name}")
                for platform, name, node in placements]
            yield kernel.all_of(procs)   # wrappers never fail the AllOf
        finally:
            self._pending_nodes -= reserved_nodes
        added, failures = [], []
        for proc in procs:
            if isinstance(proc.value, Replica):
                added.append(proc.value)
            else:
                failures.append(proc.value)
        for replica in added:
            self.replicas.append(replica)
            self.placements.append((replica.name, replica.platform_name))
            if self.router_app is not None:
                self.router_app.add_backend(*replica.backend,
                                            role=replica.role)
        self.replica_timeline.append((kernel.now, len(self.replicas)))
        if failures:
            raise StateError(
                f"{len(failures)}/{count} replica deploys failed "
                f"(first: {failures[0]}); {len(added)} added")
        return added

    def _deploy_settled(self, platform, name: str, node=None,
                        role: str = "unified"):
        """Generator: deploy one replica; returns it, or the error string."""
        try:
            replica = yield from self._deploy_replica(
                platform, name, node, role)
        except ReproError as exc:
            self.kernel.trace.emit("fleet.deploy_failed", replica=name,
                                   platform=platform.name, error=str(exc))
            return str(exc)
        return replica

    def _deploy_replica(self, platform, name: str, node=None,
                        role: str = "unified"):
        extra = {**self.config.engine_params, "name": name}
        if role != "unified":
            extra["disagg_role"] = role
        deployment = yield from self.wf.deploy_model(
            platform.name, self.config.model,
            tensor_parallel_size=self.config.tensor_parallel_size,
            node=node, extra_params=extra)
        if isinstance(platform, K8sPlatform):
            host, port = self._k8s_backend(platform, name)
        else:
            host, port = deployment.endpoint
        return Replica(name=name, platform_name=platform.name,
                       deployment=deployment, backend_host=host,
                       backend_port=port, role=role)

    def _k8s_backend(self, platform: K8sPlatform,
                     release_name: str) -> tuple[str, int]:
        for pod in platform.cluster.api.list("Pod"):
            if (pod.meta.labels.get("app") == release_name
                    and pod.phase is PodPhase.RUNNING and pod.ready):
                return pod.node_name, self.wf.package.service_port
        raise StateError(f"no ready pod for release {release_name!r}")

    def replica_status(self, replica: Replica) -> tuple[str, str]:
        """Health of one replica: ``(state, detail)``.

        * ``"ok"`` — serving (container running / pod ready on the
          registered backend host);
        * ``"moved"`` — a K8s pod is ready but on a *different* node than
          the router knows (restarted elsewhere after eviction); detail
          is the new hostname;
        * ``"degraded"`` — pods exist but none is ready (CrashLoopBackOff,
          ImagePullBackOff, rescheduling in flight);
        * ``"dead"`` — nothing backs the replica anymore.
        """
        deployment = replica.deployment
        if deployment.container is not None:      # HPC replica
            if deployment.container.running:
                return "ok", ""
            return "dead", (f"container exited "
                            f"(code={deployment.container.exit_code})")
        platform = self.site.platform(replica.platform_name)
        pods = [p for p in platform.cluster.api.list("Pod")
                if p.meta.labels.get("app") == replica.name and not p.deleted]
        ready = [p for p in pods
                 if p.phase is PodPhase.RUNNING and p.ready]
        if ready:
            if ready[0].node_name != replica.backend_host:
                return "moved", ready[0].node_name
            return "ok", ""
        if pods:
            return "degraded", pods[0].message or pods[0].phase.value
        return "dead", "no pods left for release"

    def rebind_replica(self, replica: Replica, new_host: str) -> None:
        """Re-point the router at a replica whose pod moved nodes."""
        old = replica.backend
        replica.backend_host = new_host
        if self.router_app is not None:
            self.router_app.remove_backend(*old)
            self.router_app.add_backend(*replica.backend, role=replica.role)
        self.kernel.trace.emit("fleet.rebind", replica=replica.name,
                               old=f"{old[0]}:{old[1]}", new=new_host)

    def discard_replica(self, replica: Replica) -> None:
        """Deregister and stop a dead replica immediately (no drain)."""
        if replica in self.replicas:
            self.replicas.remove(replica)
            self.replica_timeline.append((self.kernel.now,
                                          len(self.replicas)))
        if self.router_app is not None:
            self.router_app.remove_backend(*replica.backend)
        replica.deployment.stop()
        self.kernel.trace.emit("fleet.discard", replica=replica.name)

    def replace_replica(self, replica: Replica):
        """Generator: discard a dead replica and deploy a successor.

        Raises :class:`StateError` when the successor cannot deploy (no
        capacity, registry outage) — the caller owns retry policy; the
        dead replica is deregistered either way.
        """
        self.discard_replica(replica)
        added = yield from self.add_replicas(1, role=replica.role)
        return added[0]

    def remove_replica(self, replica: Replica | None = None,
                       drain_timeout: float = 180.0):
        """Generator: deregister, drain in-flight work, stop the replica.

        Returns the removed replica, or ``None`` when the fleet is already
        at one replica (never scale to zero).  Under a disagg config
        only the decode pool shrinks — the prefill pool is fixed
        provisioning, so scale-down refuses prefill replicas and keeps
        at least one decode replica.
        """
        if self.config.disagg.enabled:
            pool = [r for r in self.replicas if r.role == "decode"]
            if len(pool) <= 1 or (replica is not None
                                  and replica.role != "decode"):
                return None
        else:
            pool = self.replicas
            if len(pool) <= 1:
                return None
        replica = replica or pool[-1]
        self.replicas.remove(replica)
        kernel = self.kernel
        backend = None
        if self.router_app is not None:
            backend = self.router_app.find_backend(*replica.backend)
            self.router_app.remove_backend(*replica.backend)
        deadline = kernel.now + drain_timeout
        while (backend is not None and backend.outstanding > 0
               and kernel.now < deadline):
            yield kernel.timeout(5.0)
        replica.deployment.stop()
        self.replica_timeline.append((kernel.now, len(self.replicas)))
        return replica

    # -- traffic ----------------------------------------------------------------

    def submit(self, tenant: str, sample) -> None:
        """Open-loop entry: fire one request worker and return immediately."""
        self.inflight += 1
        worker = (self._request_fast(tenant, sample)
                  if self.ff.lane_ok()
                  else self._request_worker(tenant, sample))
        self.kernel.spawn(worker, name=f"fleet:req:{tenant}")

    def _request_worker(self, tenant: str, sample):
        try:
            yield from self.request(tenant, sample.prompt_tokens,
                                    sample.output_tokens)
        finally:
            # Unconditional: an exception escaping request() (teardown
            # interrupt, malformed response) must not strand the drain
            # loop on a permanently-elevated inflight count.
            self.inflight -= 1

    def _request_fast(self, tenant: str, sample):
        """The fast lane: one open-loop request, no HTTP machinery.

        Replays :meth:`request` -> router -> vLLM server closed-form in
        a single generator: the same four fabric-latency timeouts, the
        same router pick (via the router's own ``_pick``, so rotation
        state advances identically), the same ``engine.submit`` /
        ``handle.done`` wait, and the same span/metric/SLO/trace
        epilogue — event-for-event and byte-for-byte what the stepped
        path produces, minus the dict-shuffling of HTTP bodies through
        three generator layers.

        Only entered when :meth:`FleetFastForward.lane_ok` held at
        submit time: unified serving, healthy engines, no armed faults.
        A 5xx would mean a fault attached mid-flight outside the chaos
        orchestrator (which disarms the lane up front) — the lane
        cannot replay failover, so that raises StateError loudly rather
        than silently diverging from the stepped path.
        """
        kernel = self.kernel
        fabric = self.site.fabric
        router = self.router_app
        prompt_tokens = sample.prompt_tokens
        output_tokens = sample.output_tokens
        self.ff.fast_requests += 1
        try:
            self.slo.note_submitted()
            submitted = kernel.now
            spans = kernel.obs.spans
            trace_id, root_sid = spans.reserve_trace()
            # Leg 1: client -> router.
            yield kernel.timeout(
                fabric.latency(self._client.host, self.router_host))
            # Router ingress (router._handle): route span reservation,
            # backend pick, outstanding accounting.
            rec = spans if (spans.enabled and trace_id) else None
            route_sid = rec.reserve_span() if rec is not None else 0
            route_start = kernel.now
            backend = next(router._pick(), None)
            engines = self.ff.engines()
            engine = (engines or {}).get(
                (backend.host, backend.port)) if backend else None
            if engine is None:
                raise StateError(
                    "fleet fast lane: no routable engine (pool churned "
                    "mid-request?)")
            backend.outstanding += 1
            status, payload, stats = 200, None, None
            try:
                # Leg 2: router -> backend, then the vLLM server's
                # completion handler (engine submit + wait), inlined.
                yield kernel.timeout(
                    fabric.latency(self.router_host, backend.host))
                handle = None
                try:
                    spec = RequestSpec(
                        prompt_tokens=prompt_tokens,
                        max_new_tokens=output_tokens,
                        session_key=None, priority=0,
                        trace_id=trace_id, trace_parent=root_sid)
                    handle = engine.submit(spec)
                except ConfigurationError as exc:
                    status, payload = 400, {"error": str(exc)}
                except APIError as exc:
                    status, payload = exc.status, {"error": exc.message}
                if handle is not None:
                    try:
                        finished = yield handle.done
                        stats = finished.stats()
                    except APIError as exc:
                        status, payload = exc.status, {"error": exc.message}
                    except ContainerCrash as exc:
                        status = 500
                        payload = {"error": f"engine crashed: {exc}"}
                # Leg 3: backend -> router.
                yield kernel.timeout(
                    fabric.latency(backend.host, self.router_host))
            finally:
                backend.outstanding -= 1
            if status >= 500:
                raise StateError(
                    f"fleet fast lane: backend {backend.key} answered "
                    f"{status} ({payload}); a fault attached mid-run — "
                    "run with fast_forward=False (or through the chaos "
                    "orchestrator) for failover semantics")
            backend.consecutive_failures = 0
            backend.served += 1
            if rec is not None:
                rec.emit("route", trace_id, root_sid or None,
                         route_start, kernel.now,
                         {"backend": backend.key, "attempts": 1,
                          "outcome": "ok"}, span_id=route_sid)
            # Leg 4: router -> client, then the client epilogue.
            yield kernel.timeout(
                fabric.latency(self.router_host, self._client.host))
            ok = status == 200
            ttft = stats.ttft if ok else 0.0
            out_tokens = stats.output_tokens if ok else 0
            error = "" if ok else str((status, payload))
            if kernel.obs.registry.enabled:
                (self._c_req_ok if ok else self._c_req_err).inc()
            if trace_id:
                spans.emit("request", trace_id, None, submitted, kernel.now,
                           {"tenant": tenant, "ok": ok,
                            "output_tokens": out_tokens}, span_id=root_sid)
            self.slo.observe(RequestRecord(
                tenant=tenant, submitted=submitted, completed=kernel.now,
                ttft=ttft, latency=kernel.now - submitted,
                prompt_tokens=prompt_tokens, output_tokens=out_tokens,
                ok=ok, error=error))
            kernel.trace.emit(
                "fleet.request", tenant=tenant, ok=ok,
                ttft=round(ttft, 6),
                latency=round(kernel.now - submitted, 6),
                output_tokens=out_tokens)
        finally:
            self.inflight -= 1

    def request(self, tenant: str, prompt_tokens: int, output_tokens: int,
                session: str | None = None, turn: int = 0,
                priority: int = 0):
        """Generator: one request through the router, fully accounted.

        The closed-loop entry point session turns use directly (the
        open-loop :meth:`submit` wraps it in a fire-and-forget worker).
        Observes the SLO tracker — with turn and prefix-cache telemetry
        when ``session`` is set — and returns a :class:`TurnResult` the
        session can grow its context from.  ``priority`` rides to the
        engine (meaningful under the ``priority`` scheduler policy).
        """
        kernel = self.kernel
        self.slo.note_submitted()
        submitted = kernel.now
        ok, error, ttft, out_tokens, cached = False, "", 0.0, 0, 0
        path, kv_transfer_s = "unified", 0.0
        # Root span for the whole request; its trace id travels in the
        # body so the router (route/attempt) and engine (queue/prefill/
        # decode) attach their spans to the same tree.  Reserved here,
        # emitted closed at completion; ids are (0, 0) when recording
        # is off.
        spans = kernel.obs.spans
        trace_id, root_sid = spans.reserve_trace()
        body = {"model": self.config.model,
                "messages": [{"role": "user", "content": "<sampled>"}],
                "repro_prompt_tokens": prompt_tokens,
                "max_tokens": output_tokens,
                "temperature": 0.7}
        if session is not None:
            body["repro_session"] = session
        if priority:
            body["repro_priority"] = priority
        if trace_id:
            body["repro_trace"] = trace_id
            body["repro_parent"] = root_sid
        try:
            response = yield from self._client.post(
                self.router_host, self.config.router_port,
                "/v1/chat/completions", json=body)
            ok = response.ok
            if ok:
                stats = response.json.get("repro_stats", {})
                ttft = float(stats.get("ttft", 0.0))
                cached = int(stats.get("cached_tokens", 0))
                path = str(stats.get("path") or "unified")
                kv_transfer_s = float(stats.get("kv_transfer_s", 0.0))
                out_tokens = response.json["usage"]["completion_tokens"]
            else:
                error = str((response.status, response.json))
        except (APIError, NetworkUnreachable, ReproError) as exc:
            error = str(exc)
        if self.kernel.obs.registry.enabled:
            (self._c_req_ok if ok else self._c_req_err).inc()
        if trace_id:
            attrs = {"tenant": tenant, "ok": ok, "output_tokens": out_tokens}
            if turn:
                attrs["turn"] = turn
            spans.emit("request", trace_id, None, submitted, kernel.now,
                       attrs, span_id=root_sid)
        self.slo.observe(RequestRecord(
            tenant=tenant, submitted=submitted, completed=kernel.now,
            ttft=ttft, latency=kernel.now - submitted,
            prompt_tokens=prompt_tokens, output_tokens=out_tokens,
            ok=ok, error=error, session=session or "", turn=turn,
            cached_tokens=cached, path=path, kv_transfer_s=kv_transfer_s))
        # Request-level golden-trace record: the seed-sensitive part of
        # the day, so trace digests distinguish runs that differ only in
        # arrival randomness.  Session turns tag their turn index and
        # cache hit so session-day digests pin the reuse behavior too.
        kernel.trace.emit(
            "fleet.request", tenant=tenant, ok=ok,
            ttft=round(ttft, 6), latency=round(kernel.now - submitted, 6),
            output_tokens=out_tokens,
            **({"turn": turn, "cached_tokens": cached} if turn else {}),
            **({"path": path, "kv_transfer_s": round(kv_transfer_s, 6)}
               if path != "unified" else {}))
        return TurnResult(ok=ok, ttft=ttft, latency=kernel.now - submitted,
                          output_tokens=out_tokens, cached_tokens=cached,
                          error=error)

    # -- scenarios --------------------------------------------------------------

    def run_scenario(self, schedule: ArrivalSchedule, horizon: float,
                     mix: TenantMix | None = None, label: str = "scenario",
                     sessions: SessionSpec | None = None):
        """Generator: play ``horizon`` seconds of open-loop traffic.

        Starts the autoscaler and a metrics monitor, waits for the arrival
        stream to end and in-flight requests to drain, then returns a
        :class:`FleetReport`.

        With a ``sessions`` spec the schedule emits *session starts*
        instead of single-shot requests: each start becomes a multi-turn
        conversation whose follow-up turns self-schedule closed-loop
        (serving latency + think time), carrying the session identity
        that keys the engines' prefix caches and the router's
        cache-affinity policy.
        """
        if self.router_app is None:
            raise StateError("call fleet.start() before run_scenario()")
        kernel = self.kernel
        if self._scenario_ran:
            # Fresh accounting per scenario; earlier FleetReports keep
            # their own (now detached) trackers and event lists.
            self.slo = SloTracker(kernel, self.config.slo)
            self.autoscaler.reset()
            self.snapshots = []
            self.replica_timeline = []
        self._scenario_ran = True
        from ..sessions import SessionTraffic
        if sessions is not None and sessions.enabled:
            traffic = SessionTraffic(kernel, schedule, sessions,
                                     self.request, mix=mix)
        else:
            mix = mix or TenantMix.single(kernel)
            traffic = TrafficGenerator(kernel, schedule, mix, self.submit,
                                       fast=self.config.fast_forward)
        # Arm the fast-forward governor for open-loop traffic only:
        # session traffic keeps closed-loop think-time state the quiet
        # predicate does not model, so it always steps.
        self.ff.begin(traffic if isinstance(traffic, TrafficGenerator)
                      else None)
        self.router_app.ff_governor = self.ff
        if self.config.obs_spans:
            kernel.obs.enable_spans()
        scraper = None
        if self.config.scrape_interval > 0 and kernel.obs.registry.enabled:
            from ..obs import MetricsScraper
            scraper = MetricsScraper(kernel, kernel.obs.registry,
                                     self.config.scrape_interval)
        self.alerts = None
        if scraper is not None and self.config.alerts:
            rules = self.config.alert_rules or default_slo_rules(
                ttft_target=self.config.slo.ttft_target,
                e2e_target=self.config.slo.e2e_target,
                max_error_rate=self.config.slo.max_error_rate,
                percentile=self.config.slo.percentile,
                interval=self.config.scrape_interval,
                min_replicas=self.config.autoscaler.min_replicas)
            self.alerts = AlertEvaluator(kernel, scraper, rules)
        stop = kernel.event()
        kernel.spawn(self.autoscaler.run(stop), name="fleet:autoscaler")
        kernel.spawn(self._monitor(stop), name="fleet:monitor")
        if scraper is not None:
            kernel.spawn(scraper.run(stop), name="fleet:scraper")
        if self.alerts is not None:
            # Spawned after the scraper: same-instant wakeups then run
            # scrape-before-evaluate, so every evaluation reads the
            # freshest sample.
            kernel.spawn(self.alerts.run(stop), name="fleet:alerts")
        started = kernel.now
        self.replica_timeline.append((started, len(self.replicas)))
        try:
            arrivals = yield kernel.spawn(traffic.run(horizon),
                                          name="fleet:traffic")
            yield from self._drain()
        finally:
            self.ff.end()
        stop.succeed()
        final_row = self.slo.snapshot().row()
        final_row["replicas"] = len(self.replicas)
        self.snapshots.append(final_row)
        obs = None
        if self.config.obs_report and (kernel.obs.registry.enabled
                                       or kernel.obs.spans.enabled):
            if scraper is not None:
                scraper.scrape_once()   # pin the end-of-run state
            if self.alerts is not None:
                # Close the loop on the pin scrape: breaches still live
                # at the horizon fire/resolve deterministically.
                self.alerts.evaluate_at(kernel.now)
            obs = kernel.obs.summary()
            if scraper is not None:
                obs["scrape"] = {
                    "interval": scraper.interval,
                    "scrapes": len(scraper.samples),
                    "digest": scraper.digest(),
                }
            if self.alerts is not None:
                obs["alerts"] = self.alerts.to_json()
            if kernel.obs.spans.enabled:
                obs["attribution"] = \
                    CriticalPathAnalyzer(kernel.obs.spans).report().to_json()
        return FleetReport(
            label=label, duration=kernel.now - started, arrivals=arrivals,
            slo=self.slo.report(),
            scale_events=list(self.autoscaler.events),
            replica_timeline=list(self.replica_timeline),
            snapshots=list(self.snapshots),
            sessions=(traffic.log.to_json()
                      if isinstance(traffic, SessionTraffic) else None),
            obs=obs)

    def _monitor(self, stop_event):
        kernel = self.kernel
        interval = self.config.snapshot_interval
        while not stop_event.triggered:
            sleep = interval + self._monitor_fast_play(interval)
            yield kernel.any_of([stop_event, kernel.timeout(sleep)])
            if stop_event.triggered:
                return
            snap = self.slo.snapshot()
            row = snap.row()
            row["replicas"] = len(self.replicas)
            self.snapshots.append(row)

    def _monitor_fast_play(self, interval: float) -> float:
        """Synthesize provably-idle snapshot rows; extra seconds to sleep.

        Each skipped tick's row is exactly what the live tick would
        have recorded: with nothing in flight and no arrival before the
        bound, the SLO window only *ages* (``snapshot(at=...)`` trims it
        the same way the live tick would) and the replica count cannot
        move before the autoscaler's own action bound.  The tick at or
        after the bound runs live, on the unchanged tick phase.
        """
        if not self.ff.quiet():
            return 0.0
        bound = min(self.ff.arrival_bound(),
                    self.autoscaler.quiet_action_bound())
        now = self.kernel.now
        if not math.isfinite(bound) or bound <= now:
            return 0.0
        k = int(math.ceil((bound - now) / interval)) - 1
        if k <= 0:
            return 0.0
        n = len(self.replicas)
        append = self.snapshots.append
        for i in range(1, k + 1):
            row = self.slo.snapshot(at=now + i * interval).row()
            row["replicas"] = n
            append(row)
        return k * interval

    def _drain(self):
        kernel = self.kernel
        deadline = kernel.now + self.config.drain_timeout
        while self.inflight > 0 and kernel.now < deadline:
            yield kernel.timeout(10.0)

    # -- teardown ---------------------------------------------------------------

    def shutdown(self) -> None:
        for replica in self.replicas:
            replica.deployment.stop()
        if self.router_container is not None \
                and self.router_container.running:
            self.router_container.stop()
