"""Elastic replica autoscaler: the K8s-style control loop, site-wide.

The paper notes HPC users can recreate Kubernetes-style resilience "with
techniques like using cron jobs and deploying their own request routers";
this is the scaling half of that story.  A control loop samples the
router's per-backend outstanding-request counts (the same signal a
horizontal pod autoscaler reads from metrics), computes a desired replica
count, and converges the fleet toward it through the unified
:class:`~repro.core.deployer.Deployer` — so one autoscaler grows and
shrinks capacity across Slurm, Flux, *and* OpenShift platforms at once.

Scaling up is slow on purpose: a new vLLM replica pays image pull, weight
streaming, and engine init (minutes of simulated time), which is exactly
why the loop scales by up to ``max_step_up`` replicas per decision and
holds a cooldown before reconsidering.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..errors import ConfigurationError, ReproError, StateError

if TYPE_CHECKING:  # pragma: no cover
    from ..simkernel import Event
    from .fleet import Fleet


@dataclass(frozen=True)
class AutoscalerConfig:
    """Control-loop tuning.

    ``target_outstanding`` is the per-replica in-flight budget: the loop
    aims for ``ceil(total_outstanding / target_outstanding)`` replicas,
    clamped to ``[min_replicas, max_replicas]``.
    """

    min_replicas: int = 1
    max_replicas: int = 4
    target_outstanding: float = 8.0
    scale_down_threshold: float = 1.0   # per-replica outstanding
    low_streak: int = 5                 # consecutive low samples to go down
    interval: float = 30.0
    up_cooldown: float = 120.0
    down_cooldown: float = 600.0
    max_step_up: int = 2
    drain_timeout: float = 180.0

    def __post_init__(self):
        # Validate every knob ScenarioSpec can reach: a degenerate
        # config must fail at construction, not as a ZeroDivisionError
        # (target_outstanding=0) or a silently stuck loop (max_step_up=0,
        # negative cooldowns) deep inside a campaign cell.
        if not (1 <= self.min_replicas <= self.max_replicas):
            raise ConfigurationError(
                "need 1 <= min_replicas <= max_replicas")
        if self.target_outstanding <= 0 or self.interval <= 0:
            raise ConfigurationError(
                "target_outstanding and interval must be positive")
        if self.scale_down_threshold >= self.target_outstanding:
            raise ConfigurationError(
                "scale_down_threshold must be below target_outstanding")
        if self.max_step_up < 1:
            raise ConfigurationError("max_step_up must be >= 1")
        if self.up_cooldown < 0 or self.down_cooldown < 0:
            raise ConfigurationError("cooldowns must be >= 0")
        if self.low_streak < 1:
            raise ConfigurationError("low_streak must be >= 1")
        if self.drain_timeout < 0:
            raise ConfigurationError("drain_timeout must be >= 0")


@dataclass
class ScaleEvent:
    """One autoscaler action, for the scenario report."""

    time: float
    action: str                 # "up" | "down" | "up_failed"
    replicas_before: int
    replicas_after: int
    outstanding: float
    reason: str = ""

    def row(self) -> dict:
        return {"t": round(self.time, 1), "action": self.action,
                "replicas": f"{self.replicas_before}->{self.replicas_after}",
                "outstanding": round(self.outstanding, 1),
                "reason": self.reason}


@dataclass
class LoadSample:
    time: float
    replicas: int
    outstanding: int
    healthy: int


class Autoscaler:
    """The control loop bound to one :class:`~repro.fleet.fleet.Fleet`."""

    def __init__(self, fleet: Fleet, config: AutoscalerConfig):
        self.fleet = fleet
        self.config = config
        self.kernel = fleet.kernel
        self.events: list[ScaleEvent] = []
        self.samples: list[LoadSample] = []
        self._scaling = False
        self._last_up = -math.inf
        self._last_down = -math.inf
        self._low_streak = 0
        self._next_tick = math.inf

    def reset(self) -> None:
        """Fresh accounting for a new scenario, cooldowns included.

        Cooldowns are *scenario-relative* rate limiters, not fleet
        history: a scenario that ends right after a scale event must not
        leak a stale ``_last_up``/``_last_down`` into the next scenario
        on the same fleet, silently blocking its first scale decision
        for up to ``down_cooldown`` simulated seconds.
        """
        self.events = []
        self.samples = []
        self._low_streak = 0
        self._last_up = -math.inf
        self._last_down = -math.inf

    # -- signal -----------------------------------------------------------------

    def desired_replicas(self, outstanding: float) -> int:
        cfg = self.config
        want = math.ceil(outstanding / cfg.target_outstanding)
        return max(cfg.min_replicas, min(cfg.max_replicas, want))

    def sample(self) -> LoadSample:
        stats = self.fleet.router_app.stats()
        sample = LoadSample(
            time=self.kernel.now, replicas=len(self.fleet.replicas),
            outstanding=stats["outstanding"], healthy=stats["healthy"])
        self.samples.append(sample)
        return sample

    # -- control loop -----------------------------------------------------------

    def quiet_action_bound(self) -> float:
        """Earliest future time this loop could mutate the fleet, assuming
        the fleet stays quiet (zero outstanding) until then.

        The fleet fast-forward governor uses this to bound how far the
        *other* periodic processes (health passes, snapshots) may skip:
        with zero load the only possible decision is a scale-down, whose
        firing tick is fully determined by the current low-streak, the
        cooldown clocks, and this loop's tick phase.  Returns +inf when
        no quiet-window action is possible (already at ``min_replicas``).
        """
        cfg = self.config
        if self._scaling:
            return self.kernel.now
        n = len(self.fleet.replicas)
        nt = self._next_tick
        if n < cfg.min_replicas:
            return nt                       # a scale-up fires next tick
        if n <= cfg.min_replicas or cfg.scale_down_threshold <= 0:
            return math.inf
        # Tick j (0-based from the next wake) sees streak _low_streak+j+1.
        j_streak = max(0, cfg.low_streak - self._low_streak - 1)
        t_cd = max(self._last_down, self._last_up) + cfg.down_cooldown
        j_cd = (0 if t_cd <= nt
                else int(math.ceil((t_cd - nt) / cfg.interval)))
        return nt + max(j_streak, j_cd) * cfg.interval

    def _plan_quiet_ticks(self, horizon: float) -> int:
        """How many upcoming ticks are provably decision-free no-ops.

        Called while the fleet is quiet (zero outstanding, all healthy,
        no arrival before ``horizon``).  Each such tick would append one
        zero-load sample, bump the low streak, and decide nothing — so
        they can be played closed-form and slept through in one timeout.
        Stops strictly before the first tick at which a scale decision
        would fire, which then runs live.
        """
        cfg = self.config
        now = self.kernel.now
        n = len(self.fleet.replicas)
        if n < cfg.min_replicas or horizon <= now:
            return 0
        k = int(math.ceil((horizon - now) / cfg.interval)) - 1
        if n > cfg.min_replicas and cfg.scale_down_threshold > 0:
            # Skipped tick i carries streak _low_streak + i; the decision
            # tick must run live.
            i_streak = max(1, cfg.low_streak - self._low_streak)
            t_cd = max(self._last_down, self._last_up) + cfg.down_cooldown
            i_cd = (1 if t_cd <= now
                    else int(math.ceil((t_cd - now) / cfg.interval)))
            k = min(k, max(i_streak, i_cd) - 1)
        return max(0, k)

    def _fast_play(self) -> float:
        """Skip provably-idle ticks; returns extra seconds to sleep."""
        ff = getattr(self.fleet, "ff", None)
        if ff is None or not ff.quiet():
            return 0.0
        bound = ff.arrival_bound()
        if not math.isfinite(bound):
            # No future arrival is known (stream ended or not armed):
            # skipping would be unbounded, so keep ticking live.
            return 0.0
        cfg = self.config
        k = self._plan_quiet_ticks(bound)
        if k <= 0:
            return 0.0
        stats = self.fleet.router_app.stats()
        now = self.kernel.now
        n = len(self.fleet.replicas)
        append = self.samples.append
        for i in range(1, k + 1):
            append(LoadSample(
                time=now + i * cfg.interval, replicas=n,
                outstanding=stats["outstanding"], healthy=stats["healthy"]))
        if cfg.scale_down_threshold > 0:
            self._low_streak += k
        return k * cfg.interval

    def run(self, stop_event: Event):
        """Generator process: sample, decide, and converge until stopped."""
        kernel = self.kernel
        cfg = self.config
        while not stop_event.triggered:
            sleep = cfg.interval + self._fast_play()
            self._next_tick = kernel.now + sleep
            yield kernel.any_of([stop_event, kernel.timeout(sleep)])
            if stop_event.triggered:
                return
            sample = self.sample()
            if self._scaling:
                continue  # a deploy/drain is already converging
            n = len(self.fleet.replicas)
            desired = self.desired_replicas(sample.outstanding)
            now = kernel.now
            if sample.outstanding / max(n, 1) < cfg.scale_down_threshold:
                self._low_streak += 1
            else:
                self._low_streak = 0
            if desired > n and now - self._last_up >= cfg.up_cooldown:
                self._low_streak = 0
                step = min(desired - n, cfg.max_step_up)
                kernel.spawn(self._scale_up(step, sample),
                             name="autoscaler:up")
            elif (n > cfg.min_replicas
                  and self._low_streak >= cfg.low_streak
                  and now - self._last_down >= cfg.down_cooldown
                  and now - self._last_up >= cfg.down_cooldown):
                self._low_streak = 0
                kernel.spawn(self._scale_down(sample),
                             name="autoscaler:down")

    # -- actions ----------------------------------------------------------------

    def _scale_up(self, step: int, sample: LoadSample):
        kernel = self.kernel
        self._scaling = True
        before = len(self.fleet.replicas)
        reason = (f"outstanding={sample.outstanding} > "
                  f"{self.config.target_outstanding:g}/replica x {before}")
        try:
            added = yield from self.fleet.add_replicas(step)
        except (ReproError, StateError) as exc:
            self.events.append(ScaleEvent(
                kernel.now, "up_failed", before, len(self.fleet.replicas),
                sample.outstanding, reason=str(exc)))
            kernel.trace.emit("fleet.scale_up_failed", error=str(exc))
            return
        finally:
            self._scaling = False
            self._last_up = kernel.now
        after = len(self.fleet.replicas)
        self.events.append(ScaleEvent(
            kernel.now, "up", before, after, sample.outstanding,
            reason=reason))
        kernel.trace.emit("fleet.scale_up", added=len(added),
                          replicas=after)

    def _scale_down(self, sample: LoadSample):
        kernel = self.kernel
        self._scaling = True
        before = len(self.fleet.replicas)
        try:
            removed = yield from self.fleet.remove_replica(
                drain_timeout=self.config.drain_timeout)
        finally:
            self._scaling = False
            self._last_down = kernel.now
        after = len(self.fleet.replicas)
        if removed is None:
            return
        self.events.append(ScaleEvent(
            kernel.now, "down", before, after, sample.outstanding,
            reason=(f"outstanding/replica = "
                    f"{sample.outstanding / max(before, 1):.2f} < "
                    f"{self.config.scale_down_threshold:g}")))
        kernel.trace.emit("fleet.scale_down", removed=removed.name,
                          replicas=after)
