"""The unified deployment tool: one ``deploy()`` across all platforms.

This is the prototype the paper says it has begun building: *"One way to
think of such a tool is as a package manager for deploying containerized
applications and services, similar in concept to how the Spack tool serves
as a package manager for ... scientific software."*

``Deployer.deploy(package, platform, ...)`` resolves:

* the hardware-correct image variant (CUDA on Hops/Goodall, ROCm on El
  Dorado);
* runtime adaptation flags from the image's execution-environment
  expectations (Podman gets ``--network=host --ipc=host --device ...``;
  Apptainer gets ``--fakeroot --writable-tmpfs --cleanenv --no-home
  --nv``);
* the configuration profile's environment (offline serving);
* platform-specific staging (PFS bind mount on HPC; PVC + S3 init
  container via Helm on Kubernetes);

and returns a uniform :class:`Deployment` handle with the endpoint and the
equivalent CLI/Helm artifact for transparency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..cluster.platform import HPCPlatform, K8sPlatform
from ..cluster.profiles import PERF_PROFILES
from ..containers.image import ExecutionExpectations
from ..containers.runtime import Container, RunOpts
from ..errors import ConfigurationError, NotFoundError, StateError
from ..hardware.node import Node
from ..k8s.helm import HelmRelease
from ..k8s.objects import PodPhase
from .package import AppPackage
from .site import ConvergedSite
from .translate import helm_values_for

#: Perf-profile variant keys by (model name substring, quantized?).
_VARIANT_KEYS = {
    "Llama-4-Scout-17B-16E-Instruct-quantized.w4a16": "scout-w4a16",
    "Llama-4-Scout-17B-16E-Instruct": "scout-bf16",
    "Llama-3.1-405B": "405b-multinode",
}


def perf_variant_key(model: str) -> str | None:
    for fragment, key in _VARIANT_KEYS.items():
        if fragment in model:
            return key
    return None


@dataclass
class Deployment:
    """Uniform handle over an HPC container or a Helm release."""

    package: AppPackage
    platform_name: str
    mechanism: str                      # "podman" | "apptainer" | "helm"
    endpoint: tuple[str, int]           # (host, port) inside the site
    artifact: Any                       # argv list or helm values dict
    container: Container | None = None  # HPC deployments
    release: HelmRelease | None = None  # K8s deployments
    cluster: Any = None
    params: dict[str, Any] = field(default_factory=dict)

    @property
    def ready_endpoint(self) -> str:
        return f"http://{self.endpoint[0]}:{self.endpoint[1]}"

    def stop(self) -> None:
        if self.container is not None and self.container.running:
            self.container.stop()
        if self.release is not None and self.cluster is not None:
            self.release.uninstall(self.cluster)


class Deployer:
    """Site-aware unified deployer."""

    def __init__(self, site: ConvergedSite):
        self.site = site

    # -- runtime adaptation (the Section 4 automation) ----------------------------

    @staticmethod
    def adapt_opts(expectations: ExecutionExpectations, runtime_name: str,
                   base: RunOpts) -> RunOpts:
        """Set the runtime-specific flags the expectations require."""
        if runtime_name == "podman":
            base.network_host = expectations.host_network
            base.ipc_host = expectations.host_ipc
            if expectations.needs_gpus and base.gpus is None:
                base.gpus = "all"
        elif runtime_name == "apptainer":
            base.apptainer_fakeroot = expectations.run_as_root
            base.apptainer_writable_tmpfs = expectations.writable_rootfs
            base.apptainer_cleanenv = expectations.clean_env
            base.apptainer_no_home = expectations.isolated_home
            base.apptainer_nv = expectations.needs_gpus
            if expectations.needs_gpus and base.gpus is None:
                base.gpus = "all"
        elif runtime_name == "cri":
            pass  # pod semantics already satisfy server expectations
        else:
            raise NotFoundError(f"unknown runtime {runtime_name!r}")
        return base

    # -- HPC path -----------------------------------------------------------------------

    def deploy_hpc(self, platform: HPCPlatform, package: AppPackage,
                   params: dict[str, Any], node: Node | None = None,
                   runtime_name: str | None = None,
                   profile_name: str | None = None):
        """Generator: deploy on an HPC platform node; returns Deployment."""
        runtime_name = runtime_name or platform.default_runtime
        runtime = platform.runtime(runtime_name)
        variant = package.variant_for(platform.gpu_variant)
        registry = runtime.registry
        manifest = registry.resolve(variant.image_ref)
        profile = package.profile(profile_name)

        chosen = node or self.pick_node(platform, params,
                                        service_port=package.service_port)
        gpus = int(params.get("tensor_parallel_size", 1))
        command = package.command(params)
        opts = RunOpts(
            name=params.get("name", package.name),
            env={**profile.env, **params.get("env", {})},
            entrypoint=package.entrypoint or None,
            command=command,
            gpus=gpus,
            volumes={"./models": "/vllm-workspace/models"},
            mounts={"/vllm-workspace/models": platform.models_mount()},
            workdir="/vllm-workspace/models",
        )
        self.adapt_opts(manifest.expectations, runtime_name, opts)
        key = perf_variant_key(str(params.get("model", "")))
        if key is not None:
            perf = PERF_PROFILES.get((platform.name, key))
            if perf is not None:
                opts.extras["perf_profile"] = perf
        if "fault_plan" in params:
            opts.extras["fault_plan"] = params["fault_plan"]

        container = yield from runtime.run(chosen, manifest, opts)
        yield container.ready
        artifact = runtime.cli(variant.image_ref, opts)
        deployment = Deployment(
            package=package, platform_name=platform.name,
            mechanism=runtime_name,
            endpoint=(chosen.hostname, package.service_port),
            artifact=artifact, container=container, params=dict(params))
        self.site.kernel.trace.emit(
            "deployer.deployed", package=package.name,
            platform=platform.name, mechanism=runtime_name,
            node=chosen.hostname)
        return deployment

    def pick_node(self, platform: HPCPlatform, params: dict[str, Any],
                  service_port: int | None = None,
                  exclude: set[str] | None = None) -> Node:
        """Prefer idle nodes with the service port free; fall back to any
        node with enough free GPUs.

        ``exclude`` lets callers resolving a *batch* of placements (the
        fleet deploying several replicas concurrently) keep two deploys
        off the same node before either has bound its port.
        """
        from ..net.http import lookup
        need = int(params.get("tensor_parallel_size", 1))
        exclude = exclude or set()
        fallback: Node | None = None
        for candidate in platform.nodes:
            if candidate.hostname in exclude:
                continue
            if not candidate.up or candidate.gpus_free < need:
                continue
            port_busy = (service_port is not None and lookup(
                self.site.fabric, candidate.hostname, service_port)
                is not None)
            if port_busy:
                continue
            if candidate.gpus_used == 0:
                return candidate
            if fallback is None:
                fallback = candidate
        if fallback is not None:
            return fallback
        raise StateError(
            f"no node on {platform.name!r} has {need} free GPUs "
            f"(and a free port {service_port})")

    # -- Kubernetes path ------------------------------------------------------------------

    def deploy_k8s(self, platform: K8sPlatform, package: AppPackage,
                   params: dict[str, Any],
                   profile_name: str | None = None):
        """Generator: helm-install on a K8s platform; returns Deployment."""
        variant = package.variant_for(platform.gpu_variant)
        profile = package.profile(profile_name)
        values = helm_values_for(self.site, package, variant, profile, params)
        release_name = params.get("name", package.name)
        key = perf_variant_key(str(params.get("model", "")))
        release = HelmRelease.install(platform.cluster, release_name, values)
        # Sim-side extras must reach the pod's container: patch the
        # rendered Deployment template (the chart cannot carry live
        # objects, so this mirrors an operator-injected config).
        if key is not None:
            perf = PERF_PROFILES.get((platform.name, key))
            if perf is not None:
                self._attach_extras(platform, release_name,
                                    {"perf_profile": perf,
                                     **({"fault_plan": params["fault_plan"]}
                                        if "fault_plan" in params else {})})
        # Wait until one pod is Running and ready.
        yield from self._wait_ready(platform, release_name)
        deployment = Deployment(
            package=package, platform_name=platform.name, mechanism="helm",
            endpoint=(platform.cluster.ingress.frontend_host,
                      platform.cluster.ingress.port),
            artifact=values, release=release, cluster=platform.cluster,
            params=dict(params))
        self.site.kernel.trace.emit(
            "deployer.deployed", package=package.name,
            platform=platform.name, mechanism="helm")
        return deployment

    @staticmethod
    def _attach_extras(platform: K8sPlatform, release_name: str,
                       extras: dict[str, Any]) -> None:
        """Stash sim-side extras on the pod template; the kubelet copies
        them into each container's RunOpts."""
        dep = platform.cluster.api.get("Deployment", release_name)
        dep.template._extras = extras  # type: ignore[attr-defined]

    def _wait_ready(self, platform: K8sPlatform, release_name: str,
                    poll: float = 5.0, timeout: float = 7200.0):
        kernel = self.site.kernel
        deadline = kernel.now + timeout
        while kernel.now < deadline:
            pods = platform.cluster.api.list("Pod")
            for pod in pods:
                if pod.meta.labels.get("app") == release_name and \
                        pod.phase is PodPhase.RUNNING and pod.ready:
                    return
            yield kernel.timeout(poll)
        raise StateError(
            f"release {release_name!r} did not become ready within "
            f"{timeout} s")

    # -- uniform front door ------------------------------------------------------------------

    def deploy(self, package: AppPackage, platform_name: str,
               params: dict[str, Any], **kw):
        """Generator: platform-dispatching deploy (the tool's single UI)."""
        platform = self.site.platform(platform_name)
        if isinstance(platform, HPCPlatform):
            result = yield from self.deploy_hpc(platform, package, params,
                                                **kw)
        elif isinstance(platform, K8sPlatform):
            result = yield from self.deploy_k8s(platform, package, params,
                                                **kw)
        else:  # pragma: no cover - defensive
            raise ConfigurationError(f"unknown platform type {platform!r}")
        return result
