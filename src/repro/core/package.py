"""AppPackage: the container-deployment package manager's unit (Section 4).

The paper identifies four gaps and proposes metadata-driven tooling:

1. *Container runtime user interface differences* — covered by the image's
   :class:`~repro.containers.image.ExecutionExpectations`, which the
   deployer translates into per-runtime flags.
2. *Computing platform differences* — covered by
   :class:`HardwareVariant`: one logical package, per-vendor images
   (upstream vLLM ships CUDA; AMD ships ROCm builds).
3. *Application and service configuration* — covered by
   :class:`ConfigProfile`: named high-level modes (offline vs internet,
   single- vs multi-node) that expand to env/flags.
4. *Computing center differences* — covered by site profiles
   (:mod:`~repro.core.profiles`) feeding endpoints/registries in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable
from typing import Any

from ..errors import ConfigurationError, NotFoundError


@dataclass(frozen=True)
class HardwareVariant:
    """Which image to use on which accelerator ecosystem."""

    gpu_arch: str        # "cuda" | "rocm" | "oneapi"
    image_ref: str


@dataclass(frozen=True)
class ConfigProfile:
    """A named high-level configuration (e.g. offline serving)."""

    name: str
    env: dict[str, str] = field(default_factory=dict)
    description: str = ""


@dataclass
class AppPackage:
    """A deployable containerized application, platform-agnostic.

    ``command_builder(params) -> tuple[str, ...]`` renders the container
    command from deployment parameters (model, parallelism, ports...).
    """

    name: str
    description: str
    variants: dict[str, HardwareVariant]
    profiles: dict[str, ConfigProfile]
    default_profile: str
    service_port: int
    entrypoint: str = ""
    command_builder: Callable[[dict[str, Any]], tuple[str, ...]] | None = None

    def variant_for(self, gpu_arch: str) -> HardwareVariant:
        try:
            return self.variants[gpu_arch]
        except KeyError:
            raise NotFoundError(
                f"package {self.name!r} has no image for {gpu_arch!r} "
                f"hardware; variants: {sorted(self.variants)}") from None

    def profile(self, name: str | None = None) -> ConfigProfile:
        key = name or self.default_profile
        try:
            return self.profiles[key]
        except KeyError:
            raise NotFoundError(
                f"package {self.name!r} has no profile {key!r}; "
                f"profiles: {sorted(self.profiles)}") from None

    def command(self, params: dict[str, Any]) -> tuple[str, ...]:
        if self.command_builder is None:
            return ()
        return self.command_builder(params)


# -- the vLLM package (the case study's application) ----------------------------------

OFFLINE_SERVING_ENV = {
    "OMP_NUM_THREADS": "1",
    "HF_HUB_ENABLE_HF_TRANSFER": "0",
    "HF_HUB_DISABLE_TELEMETRY": "1",
    "VLLM_NO_USAGE_STATS": "1",
    "DO_NOT_TRACK": "1",
    "HF_DATASETS_OFFLINE": "1",
    "TRANSFORMERS_OFFLINE": "1",
    "HF_HUB_OFFLINE": "1",
    "VLLM_DISABLE_COMPILE_CACHE": "1",
}

ONLINE_SERVING_ENV = {
    "OMP_NUM_THREADS": "1",
    "HF_HUB_DISABLE_TELEMETRY": "1",
    "VLLM_NO_USAGE_STATS": "1",
}


def _vllm_command(params: dict[str, Any]) -> tuple[str, ...]:
    model = params.get("model")
    if not model:
        raise ConfigurationError("vllm deployment needs a 'model' parameter")
    argv: list[str] = ["serve", str(model)]
    tp = int(params.get("tensor_parallel_size", 1))
    argv.append(f"--tensor_parallel_size={tp}")
    pp = int(params.get("pipeline_parallel_size", 1))
    if pp > 1:
        argv.append(f"--pipeline_parallel_size={pp}")
    if params.get("disable_log_requests", True):
        argv.append("--disable-log-requests")
    if params.get("enable_prefix_caching"):
        argv.append("--enable-prefix-caching")
    gmu = params.get("gpu_memory_utilization")
    if gmu is not None:
        argv.append(f"--gpu_memory_utilization={float(gmu)}")
    max_len = params.get("max_model_len")
    if max_len is not None:
        argv.append(f"--max-model-len={int(max_len)}")
    served = params.get("served_model_name")
    if served:
        argv.append(f"--served-model-name={served}")
    policy = params.get("scheduler_policy")
    if policy and policy != "fcfs":
        argv.append(f"--scheduler-policy={policy}")
    chunk = params.get("chunk_tokens")
    if chunk is not None:
        argv.append(f"--chunk-tokens={int(chunk)}")
    role = params.get("disagg_role")
    if role and role != "unified":
        argv.append(f"--disagg-role={role}")
    overrides = params.get("override_generation_config")
    if overrides:
        import json
        argv.append(f"--override-generation-config={json.dumps(overrides)}")
    return tuple(argv)


def vllm_package() -> AppPackage:
    """The vLLM inference server as an AppPackage (paper Figures 4-6)."""
    return AppPackage(
        name="vllm-openai",
        description="vLLM OpenAI-compatible LLM inference server",
        variants={
            "cuda": HardwareVariant("cuda", "vllm/vllm-openai:v0.9.1"),
            "rocm": HardwareVariant(
                "rocm", "rocm/vllm:rocm6.4.1_vllm_0.9.1_20250702"),
        },
        profiles={
            "offline-serving": ConfigProfile(
                "offline-serving", env=dict(OFFLINE_SERVING_ENV),
                description="air-gapped serving; all hub access disabled"),
            "online-serving": ConfigProfile(
                "online-serving", env=dict(ONLINE_SERVING_ENV),
                description="internet-enabled; may download models on "
                            "first use"),
        },
        default_profile="offline-serving",
        service_port=8000,
        entrypoint="vllm",
        command_builder=_vllm_command,
    )
