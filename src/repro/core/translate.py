"""Artifact generation: the paper-figure commands from deployment intent.

The deployer produces *runnable simulated deployments*; this module
produces the *equivalent human artifacts* — the Podman/Apptainer command
lines of Figures 4-5 and the Helm values of Figure 6 — so users can see
exactly what the tool did on their behalf.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from ..errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover
    from .package import AppPackage, ConfigProfile, HardwareVariant
    from .site import ConvergedSite


def helm_values_for(site: ConvergedSite, package: AppPackage,
                    variant: HardwareVariant, profile: ConfigProfile,
                    params: dict[str, Any]) -> dict[str, Any]:
    """Build the vLLM chart values (paper Figure 6) from intent."""
    model = params.get("model")
    if not model:
        raise ConfigurationError("k8s deployment needs a 'model' parameter")
    repository, _, tag = variant.image_ref.rpartition(":")
    gpus = int(params.get("tensor_parallel_size", 1))
    command = ["vllm", "serve", "/data/",
               "--host", "0.0.0.0", "--port",
               str(package.service_port),
               "--served-model-name", str(model),
               f"--tensor-parallel-size={gpus}"]
    if params.get("disable_log_requests", True):
        command.append("--disable-log-requests")
    max_len = params.get("max_model_len")
    if max_len is not None:
        command.append(f"--max-model-len={int(max_len)}")
    policy = params.get("scheduler_policy")
    if policy and policy != "fcfs":
        command.append(f"--scheduler-policy={policy}")
    chunk = params.get("chunk_tokens")
    if chunk is not None:
        command.append(f"--chunk-tokens={int(chunk)}")
    role = params.get("disagg_role")
    if role and role != "unified":
        command.append(f"--disagg-role={role}")
    env = [{"name": "HOME", "value": "/data"},
           {"name": "HF_HOME", "value": "/data"}]
    for key, value in profile.env.items():
        env.append({"name": key, "value": value})
    storage = int(params.get("storage_bytes", 300 * 1024**3))
    values: dict[str, Any] = {
        "image": {"repository": repository, "tag": tag, "command": command},
        "env": env,
        "resources": {"gpus": gpus},
        "storage": {"size": storage},
        "replicas": int(params.get("replicas", 1)),
        "service": {"port": package.service_port},
        "ingress": {"enabled": True,
                    "host": params.get(
                        "ingress_host",
                        f"{params.get('name', package.name)}.apps.example")},
        "modelDownload": {
            "enabled": True,
            "bucket": params.get("model_bucket", "huggingface.co"),
            "prefix": f"{model}/",
            **site.s3_env,
        },
    }
    return values


def command_text(argv: list[str]) -> str:
    """Render an argv list as a readable multi-line command (paper style)."""
    if not argv:
        return ""
    head, *rest = argv
    lines = [head]
    current = head
    for token in rest:
        if token.startswith("-") or current.startswith("-") is False:
            lines.append("    " + token)
            current = token
        else:
            lines[-1] += " " + token
    return " \\\n".join([lines[0]] + [l.strip() for l in lines[1:]])


def paper_figure4_command() -> list[str]:
    """The literal Figure 4 Podman deployment (for artifact tests)."""
    return [
        "podman run", "--rm", "--name=vllm", "--network=host", "--ipc=host",
        "--entrypoint=vllm", "--device nvidia.com/gpu=all",
        '-e "OMP_NUM_THREADS=1"', '-e "HF_HUB_ENABLE_HF_TRANSFER=0"',
        '-e "HF_HUB_DISABLE_TELEMETRY=1"', '-e "VLLM_NO_USAGE_STATS=1"',
        '-e "DO_NOT_TRACK=1"', '-e "HF_DATASETS_OFFLINE=1"',
        '-e "TRANSFORMERS_OFFLINE=1"', '-e "HF_HUB_OFFLINE=1"',
        '-e "VLLM_DISABLE_COMPILE_CACHE=1"',
        "--volume=./models:/vllm-workspace/models",
        "--workdir=/vllm-workspace/models",
        "${LOCAL_REGISTRY}vllm/vllm-openai:v0.9.1 serve",
        "meta-llama/Llama-4-Scout-17B-16E-Instruct",
        "--tensor_parallel_size=4", "--disable-log-requests",
        "--max-model-len=65536",
    ]
