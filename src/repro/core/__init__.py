"""The paper's contribution layer: converged site + unified deployment tool.

* :mod:`~repro.core.site` — the Fig. 1 converged computing architecture as
  one assembled object (HPC platforms, Kubernetes, registries, S3, network).
* :mod:`~repro.core.package` — ``AppPackage``: the Section 4 proposal of a
  *package manager for containerized applications*: execution-environment
  expectations, per-hardware image variants, and high-level configuration
  profiles, resolved per platform/site automatically.
* :mod:`~repro.core.deployer` — ``Deployer.deploy(package, platform)``:
  one call that adapts to Podman, Apptainer, or Helm/Kubernetes.
* :mod:`~repro.core.workflow` — the end-to-end case study of Section 3.
"""

from .. import services  # noqa: F401  (registers git/aws-cli app behaviors)
from .. import vllm as _vllm  # noqa: F401  (registers the vllm-openai app)
from .site import ConvergedSite, build_sandia_site, apply_s3_routing_fix
from .package import AppPackage, ConfigProfile, HardwareVariant, vllm_package
from .deployer import Deployer, Deployment
from .ingress import expose_service
from .workflow import CaseStudyWorkflow

__all__ = [
    "AppPackage",
    "CaseStudyWorkflow",
    "ConfigProfile",
    "ConvergedSite",
    "Deployer",
    "Deployment",
    "HardwareVariant",
    "apply_s3_routing_fix",
    "build_sandia_site",
    "expose_service",
    "vllm_package",
]
