"""The converged computing architecture (paper Figure 1) as one object.

``build_sandia_site`` assembles a Sandia-like site:

* **Hops** — HPC, Slurm, 4 x H100-80G per node, Lustre;
* **El Dorado** — HPC, Flux, 4 x MI300A per node, Lustre;
* **Goodall** — OpenShift/Kubernetes, 2 x H100-NVL-94G per node, ingress,
  Ceph-backed PVs;
* **CEE-OpenShift** — production Kubernetes with A100s;
* site-wide S3 object storage (two sites, 16 x 25 Gbps frontends),
  GitLab + Quay registries (Quay scans and mirrors), and the campus
  network with the *mis-routed* Hops-to-S3 default path that the paper
  fixed for an order-of-magnitude bandwidth gain.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..containers.image import (alpine_git_image, aws_cli_image,
                                vllm_cuda_image, vllm_rocm_image)
from ..containers.apptainer import ApptainerRuntime
from ..containers.podman import PodmanRuntime
from ..containers.registry import Registry
from ..hardware.gpu import gpu_spec
from ..hardware.node import NicSpec, Node, NodeSpec, make_nodes
from ..k8s.cluster import KubernetesCluster
from ..models.catalog import llama31_405b, llama4_scout, llama4_scout_quantized
from ..models.repository import ModelHub
from ..net.cal import ComputeAsLogin
from ..net.proxy import NginxProxy
from ..net.topology import Fabric
from ..simkernel import SimKernel
from ..storage.filesystem import ParallelFilesystem
from ..storage.object_store import ObjectStore
from ..cluster.platform import HPCPlatform, K8sPlatform
from ..units import GiB, gbps

#: Default access token granted for gated model downloads.
HF_TOKEN = "hf_sandia_demo_token"
S3_KEY, S3_SECRET = "AKIA_SANDIA", "s3-secret-demo"


@dataclass
class ConvergedSite:
    """Everything Figure 1 shows, wired together."""

    kernel: SimKernel
    fabric: Fabric
    s3: ObjectStore
    hub: ModelHub
    gitlab: Registry
    quay: Registry
    hops: HPCPlatform
    eldorado: HPCPlatform
    goodall: K8sPlatform
    cee: K8sPlatform
    user_host: str = "user-workstation"
    hf_token: str = HF_TOKEN
    s3_env: dict[str, str] = field(default_factory=dict)

    def platform(self, name: str):
        mapping = {"hops": self.hops, "eldorado": self.eldorado,
                   "goodall": self.goodall, "cee": self.cee}
        try:
            return mapping[name]
        except KeyError:
            from ..errors import NotFoundError
            raise NotFoundError(
                f"unknown platform {name!r}; site has {sorted(mapping)}"
            ) from None

    @property
    def platforms(self) -> dict[str, object]:
        return {"hops": self.hops, "eldorado": self.eldorado,
                "goodall": self.goodall, "cee": self.cee}


def _hpc_node_spec(name: str, gpu_name: str, mem_gib: int = 768) -> NodeSpec:
    return NodeSpec(
        name=name, cpus=96, memory_bytes=mem_gib * GiB,
        gpus=tuple([gpu_spec(gpu_name)] * 4),
        nics=(NicSpec("hsn0", gbps(200), "hsn"),
              NicSpec("eth0", gbps(25), "campus")))


def build_sandia_site(seed: int = 0, hops_nodes: int = 16,
                      eldorado_nodes: int = 16, goodall_nodes: int = 6,
                      cee_nodes: int = 4,
                      misroute_hops_s3: bool = True) -> ConvergedSite:
    """Assemble the full converged site.

    ``misroute_hops_s3`` reproduces the initial (slow) routing state of
    Section 2.4; :func:`apply_s3_routing_fix` applies the fix.
    """
    kernel = SimKernel(seed=seed)
    fabric = Fabric(kernel)

    # -- site core network ------------------------------------------------------
    spine = fabric.add_switch("site-spine")
    campus = fabric.add_switch("campus-net")
    fabric.connect(spine, campus, gbps(100))
    fabric.add_host("user-workstation", zone="external",
                    externally_reachable=True)
    fabric.connect("user-workstation", campus, gbps(1))
    # Internet uplink (model downloads only).
    fabric.add_host("huggingface.co", zone="internet",
                    externally_reachable=True)
    fabric.connect("huggingface.co", campus, gbps(10), name="internet-uplink")

    # -- object storage (two sites) -----------------------------------------------
    fabric.add_host("s3-abq", zone="site")
    fabric.connect("s3-abq", spine, gbps(400), name="s3-abq-frontend")
    fabric.add_host("s3-liv", zone="site")
    fabric.connect("s3-liv", spine, gbps(400), name="s3-liv-frontend")
    s3 = ObjectStore(kernel, fabric, endpoint="s3.sandia.example",
                     replication_lag=30.0)
    s3.add_site("albuquerque", "s3-abq")
    s3.add_site("livermore", "s3-liv")
    s3.add_credentials(S3_KEY, S3_SECRET)

    # -- registries ------------------------------------------------------------------
    fabric.add_host("gitlab-registry", zone="site")
    fabric.connect("gitlab-registry", spine, gbps(25))
    fabric.add_host("quay-registry", zone="site")
    fabric.connect("quay-registry", spine, gbps(50))
    gitlab = Registry(kernel, fabric, "gitlab", "gitlab-registry")
    quay = Registry(kernel, fabric, "quay", "quay-registry",
                    scan_on_push=True)
    gitlab.add_mirror(quay, lag=60.0)
    for image in (vllm_cuda_image(), vllm_rocm_image(), alpine_git_image(),
                  aws_cli_image()):
        gitlab.seed(image)
        quay.seed(image)

    # -- model hub --------------------------------------------------------------------
    hub = ModelHub(kernel, fabric, host="huggingface.co")
    for card in (llama4_scout(), llama4_scout_quantized(), llama31_405b()):
        hub.publish(card, gated=True)
    hub.grant_token(HF_TOKEN)

    # -- Hops (Slurm + H100) ------------------------------------------------------------
    from ..wlm.slurm import SlurmManager
    hops_switch = fabric.add_switch("hops-hsn")
    fabric.connect(hops_switch, spine, gbps(400), name="hops-uplink")
    fabric.connect(hops_switch, campus, gbps(25), name="hops-campus")
    fabric.add_host("hops-login", zone="hops", externally_reachable=True)
    fabric.connect("hops-login", hops_switch, gbps(25))
    fabric.add_host("hops-svc", zone="hops", externally_reachable=True)
    fabric.connect("hops-svc", hops_switch, gbps(25))
    fabric.add_host("hops-lustre", zone="hops")
    fabric.connect("hops-lustre", hops_switch, gbps(800))
    hops_nodes_list = make_nodes(
        "hops", hops_nodes, _hpc_node_spec("hops-node", "H100-SXM-80G"))
    for node in hops_nodes_list:
        fabric.add_host(node.hostname, zone="hops")
        fabric.connect(node.hostname, hops_switch, gbps(200))
    hops_fs = ParallelFilesystem(kernel, fabric, "hops-lustre", "hops-lustre",
                                 mounted_platforms=["hops"])
    hops_slurm = SlurmManager(kernel, hops_nodes_list, platform="hops")
    hops_proxy = NginxProxy(fabric, "hops-svc")
    hops = HPCPlatform(
        name="hops", kernel=kernel, fabric=fabric, nodes=hops_nodes_list,
        wlm=hops_slurm, filesystem=hops_fs,
        podman=PodmanRuntime(kernel, fabric, gitlab),
        apptainer=ApptainerRuntime(kernel, fabric, gitlab, hops_fs),
        login_host="hops-login", service_host="hops-svc",
        proxy=hops_proxy, cal=ComputeAsLogin(fabric, hops_proxy),
        gpu_variant="cuda", default_runtime="podman")
    if misroute_hops_s3:
        # Initial state of Section 2.4: Hops -> S3 hairpins through the
        # 25 Gbps campus path instead of the 400 Gbps spine uplink.
        fabric.add_route("zone:hops", "s3-abq",
                         via=["hops-hsn", "campus-net", "site-spine"])

    # -- El Dorado (Flux + MI300A) -------------------------------------------------------
    from ..wlm.flux import FluxManager
    eldo_switch = fabric.add_switch("eldo-hsn")
    fabric.connect(eldo_switch, spine, gbps(400), name="eldo-uplink")
    fabric.add_host("eldo-login", zone="eldorado", externally_reachable=True)
    fabric.connect("eldo-login", eldo_switch, gbps(25))
    fabric.add_host("eldo-svc", zone="eldorado", externally_reachable=True)
    fabric.connect("eldo-svc", eldo_switch, gbps(25))
    fabric.add_host("eldo-lustre", zone="eldorado")
    fabric.connect("eldo-lustre", eldo_switch, gbps(800))
    eldo_nodes_list = make_nodes(
        "eldo", eldorado_nodes,
        _hpc_node_spec("eldo-node", "MI300A-120G"), start=1001, width=4)
    for node in eldo_nodes_list:
        fabric.add_host(node.hostname, zone="eldorado")
        fabric.connect(node.hostname, eldo_switch, gbps(200))
    eldo_fs = ParallelFilesystem(kernel, fabric, "eldo-lustre", "eldo-lustre",
                                 mounted_platforms=["eldorado"])
    eldo_flux = FluxManager(kernel, eldo_nodes_list, platform="eldorado")
    eldo_proxy = NginxProxy(fabric, "eldo-svc")
    eldorado = HPCPlatform(
        name="eldorado", kernel=kernel, fabric=fabric,
        nodes=eldo_nodes_list, wlm=eldo_flux, filesystem=eldo_fs,
        podman=PodmanRuntime(kernel, fabric, gitlab),
        apptainer=ApptainerRuntime(kernel, fabric, gitlab, eldo_fs),
        login_host="eldo-login", service_host="eldo-svc",
        proxy=eldo_proxy, cal=ComputeAsLogin(fabric, eldo_proxy),
        gpu_variant="rocm", default_runtime="podman")

    # -- Goodall (OpenShift + H100 NVL) ---------------------------------------------------
    goodall = _build_k8s_platform(
        kernel, fabric, spine, name="goodall", n_nodes=goodall_nodes,
        gpu_name="H100-NVL-94G", gpus_per_node=2, registry=quay)

    # -- CEE-OpenShift (production, A100) ---------------------------------------------------
    cee = _build_k8s_platform(
        kernel, fabric, spine, name="cee", n_nodes=cee_nodes,
        gpu_name="A100-SXM-80G", gpus_per_node=4, registry=quay)

    site = ConvergedSite(
        kernel=kernel, fabric=fabric, s3=s3, hub=hub, gitlab=gitlab,
        quay=quay, hops=hops, eldorado=eldorado, goodall=goodall, cee=cee,
        s3_env={
            "AWS_ACCESS_KEY_ID": S3_KEY,
            "AWS_SECRET_ACCESS_KEY": S3_SECRET,
            "AWS_ENDPOINT_URL": "s3.sandia.example",
            "AWS_REQUEST_CHECKSUM_CALCULATION": "when_required",
            "AWS_MAX_ATTEMPTS": "10",
        })
    kernel.trace.emit("site.built", platforms=sorted(site.platforms))
    return site


def _build_k8s_platform(kernel, fabric, spine, name: str, n_nodes: int,
                        gpu_name: str, gpus_per_node: int,
                        registry: Registry) -> K8sPlatform:
    switch = fabric.add_switch(f"{name}-net")
    fabric.connect(switch, spine, gbps(200), name=f"{name}-uplink")
    fabric.add_host(f"{name}-ingress", zone=name, externally_reachable=True)
    fabric.connect(f"{name}-ingress", switch, gbps(50))
    fabric.add_host(f"{name}-ceph", zone=name)
    fabric.connect(f"{name}-ceph", switch, gbps(400))
    spec = NodeSpec(
        name=f"{name}-node", cpus=64, memory_bytes=512 * GiB,
        gpus=tuple([gpu_spec(gpu_name)] * gpus_per_node),
        nics=(NicSpec("eth0", gbps(100), name),))
    nodes = make_nodes(name, n_nodes, spec)
    for node in nodes:
        fabric.add_host(node.hostname, zone=name)
        fabric.connect(node.hostname, switch, gbps(100))
    cluster = KubernetesCluster(
        kernel, fabric, name, nodes, registry,
        frontend_host=f"{name}-ingress",
        storage_backend_host=f"{name}-ceph",
        node_labels={n.hostname: {"gpu": gpu_name} for n in nodes})
    variant = "rocm" if "MI300" in gpu_name else "cuda"
    return K8sPlatform(name=name, kernel=kernel, fabric=fabric,
                       cluster=cluster, gpu_variant=variant)


def apply_s3_routing_fix(site: ConvergedSite) -> None:
    """The Section 2.4 fix: stop hairpinning Hops S3 traffic through the
    campus network; let it take the 400 Gbps spine path."""
    site.fabric.remove_route("zone:hops", "s3-abq")
    site.kernel.trace.emit("site.s3_routing_fixed")
