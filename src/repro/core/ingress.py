"""Unified ingress: one call to expose a deployment externally.

Section 3.3's three mechanisms behind one function:

* ``mode="tunnel"`` — single-user SSH tunnel through the login node;
* ``mode="cal"`` — Compute-as-Login via the platform NGINX proxy
  (multi-user, persistent);
* ``mode="ingress"`` — Kubernetes ingress (already provisioned by the
  Helm chart; this just returns the URL).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.platform import HPCPlatform, K8sPlatform
from ..errors import ConfigurationError
from ..net.ssh import SshTunnel
from .deployer import Deployment
from .site import ConvergedSite


@dataclass
class ExposedService:
    """Where external clients reach the service."""

    mode: str
    host: str
    port: int
    detail: object = None  # tunnel / lease

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def close(self) -> None:
        if self.mode == "tunnel" and self.detail is not None:
            self.detail.close()


def expose_service(site: ConvergedSite, deployment: Deployment,
                   mode: str = "auto", user: str = "user",
                   local_port: int | None = None) -> ExposedService:
    """Expose ``deployment`` to the external network."""
    platform = site.platform(deployment.platform_name)
    if isinstance(platform, K8sPlatform):
        if mode not in ("auto", "ingress"):
            raise ConfigurationError(
                f"K8s deployments use ingress, not {mode!r}")
        host, port = deployment.endpoint
        return ExposedService(mode="ingress", host=host, port=port)
    if not isinstance(platform, HPCPlatform):  # pragma: no cover
        raise ConfigurationError(f"unknown platform {platform!r}")
    node_host, svc_port = deployment.endpoint
    if mode in ("auto", "cal"):
        lease = platform.cal.provision(user, node_host, service_port=svc_port)
        return ExposedService(mode="cal", host=platform.service_host,
                              port=lease.external_port, detail=lease)
    if mode == "tunnel":
        tunnel = SshTunnel(site.fabric, site.user_host, platform.login_host,
                           node_host, svc_port, local_port=local_port)
        return ExposedService(mode="tunnel", host=site.user_host,
                              port=tunnel.local_port, detail=tunnel)
    raise ConfigurationError(f"unknown ingress mode {mode!r}")
