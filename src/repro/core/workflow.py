"""The end-to-end case study (paper Section 3) as library operations.

Stages: download the model from the hub (containerized git, Fig. 2) ->
store it in site S3 (containerized aws-cli, Fig. 3) -> stage to platform
storage -> deploy the inference server (Figs. 4-6) -> expose it
(Section 3.3) -> query it (Fig. 7) -> benchmark it (Fig. 8).

All methods are generators; drive them from a simulation process or with
``run()`` helpers on the kernel.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from ..bench.client import BenchmarkClient
from ..bench.sharegpt import ShareGptSampler
from ..bench.sweep import ConcurrencySweep, SweepResult
from ..cluster.platform import HPCPlatform, K8sPlatform
from ..containers.runtime import RunOpts
from ..errors import ConfigurationError, SimulatedFailure
from ..models.catalog import model_card
from ..net.http import HttpClient
from ..storage.mounts import PfsMount
from .deployer import Deployer, Deployment
from .ingress import ExposedService, expose_service
from .package import AppPackage, vllm_package
from .site import ConvergedSite

if TYPE_CHECKING:  # pragma: no cover
    from ..hardware.node import Node


class CaseStudyWorkflow:
    """Orchestrates the Section 3 workflow on a converged site."""

    def __init__(self, site: ConvergedSite, package: AppPackage | None = None):
        self.site = site
        self.kernel = site.kernel
        self.deployer = Deployer(site)
        self.package = package or vllm_package()

    # -- helpers -----------------------------------------------------------------

    def _free_node(self, platform: HPCPlatform, gpus: int = 0) -> Node:
        for node in platform.nodes:
            if node.up and node.gpus_free >= gpus:
                return node
        raise ConfigurationError(f"no free node on {platform.name}")

    def run(self, generator):
        """Drive a workflow generator to completion on the kernel."""
        def proc(env):
            result = yield from generator
            return result
        return self.kernel.run(until=self.kernel.spawn(proc(self.kernel)))

    # -- stage 1: download (Figure 2) ------------------------------------------------

    def download_model(self, model: str, platform_name: str = "hops"):
        """Containerized ``git clone`` of the model onto platform storage."""
        platform = self.site.platform(platform_name)
        assert isinstance(platform, HPCPlatform)
        node = self._free_node(platform)
        mount = platform.models_mount()
        opts = RunOpts(
            name="model-download",
            env={"MODEL": model, "TOKEN": self.site.hf_token,
                 "GIT_DEST": "/git/models"},
            volumes={"./models": "/git/models",
                     "./cert.pem": "/etc/ssl/cert.pem"},
            mounts={"/git/models": mount},
            workdir="/git/models",
        )
        container = yield from platform.podman.run(
            node, "alpine/git:latest", opts)
        code = yield container.exited
        if code != 0:
            raise SimulatedFailure(f"model download failed (exit {code})",
                                   sim_time=self.kernel.now)
        return mount.listdir()

    # -- stage 2: store in S3 (Figure 3) ------------------------------------------------

    def upload_model_to_s3(self, model: str, platform_name: str = "hops"):
        """Containerized ``aws s3 sync`` of the checkout into site S3."""
        platform = self.site.platform(platform_name)
        assert isinstance(platform, HPCPlatform)
        node = self._free_node(platform)
        model_dir = PfsMount(platform.filesystem, f"/models/{model}")
        opts = RunOpts(
            name="model-upload",
            env=dict(self.site.s3_env),
            command=("s3", "sync", f"./models/{model}",
                     f"s3://huggingface.co/{model}", "--exclude", ".git*"),
            volumes={"./models": "/aws/models"},
            mounts={f"./models/{model}": model_dir},
            workdir="/aws",
        )
        container = yield from platform.podman.run(
            node, "amazon/aws-cli:latest", opts)
        code = yield container.exited
        if code != 0:
            raise SimulatedFailure(f"S3 upload failed (exit {code})",
                                   sim_time=self.kernel.now)
        return self.site.s3.list_objects("huggingface.co", f"{model}/")

    # -- stage 3: stage to a platform -----------------------------------------------------

    def stage_model_from_s3(self, model: str, platform_name: str):
        """Pull the model from S3 onto an HPC platform's filesystem
        (Kubernetes platforms stage via the Helm chart's init container)."""
        platform = self.site.platform(platform_name)
        assert isinstance(platform, HPCPlatform)
        node = self._free_node(platform)
        mount = platform.models_mount()
        opts = RunOpts(
            name="model-stage",
            env=dict(self.site.s3_env),
            command=("s3", "sync", f"s3://huggingface.co/{model}",
                     "./models"),
            mounts={"./models": mount},
        )
        container = yield from platform.podman.run(
            node, "amazon/aws-cli:latest", opts)
        code = yield container.exited
        if code != 0:
            raise SimulatedFailure(f"staging failed (exit {code})",
                                   sim_time=self.kernel.now)
        return mount.listdir()

    def admin_seed_model(self, model: str, platform_name: str) -> None:
        """Test/bench fast path: place model files on platform storage
        without simulating the transfer pipeline."""
        platform = self.site.platform(platform_name)
        card = model_card(model)
        if isinstance(platform, HPCPlatform):
            for rel, size in card.repo_files().items():
                platform.filesystem.write_meta(f"/models/{model}/{rel}", size)
        else:
            raise ConfigurationError(
                "K8s platforms stage via the Helm chart; seed S3 instead")

    def admin_seed_s3(self, model: str) -> None:
        """Place the model in S3 directly (as if previously uploaded)."""
        card = model_card(model)
        bucket = self.site.s3.primary().bucket("huggingface.co", create=True)
        for rel, size in card.repo_files().items():
            bucket.put(f"{model}/{rel}", size, self.kernel.now)

    # -- stage 4: deploy (Figures 4-6) ------------------------------------------------------

    def deploy_model(self, platform_name: str, model: str,
                     tensor_parallel_size: int,
                     max_model_len: int | None = 65536,
                     runtime_name: str | None = None,
                     node: Node | None = None,
                     extra_params: dict[str, Any] | None = None):
        """Unified deploy via the Section 4 tool."""
        params: dict[str, Any] = {
            "model": model,
            "tensor_parallel_size": tensor_parallel_size,
            "max_model_len": max_model_len,
        }
        if extra_params:
            params.update(extra_params)
        platform = self.site.platform(platform_name)
        if isinstance(platform, K8sPlatform):
            deployment = yield from self.deployer.deploy_k8s(
                platform, self.package, params)
        else:
            deployment = yield from self.deployer.deploy_hpc(
                platform, self.package, params, node=node,
                runtime_name=runtime_name)
        return deployment

    # -- stage 5: expose (Section 3.3) --------------------------------------------------------

    def expose(self, deployment: Deployment, mode: str = "auto",
               user: str = "user") -> ExposedService:
        return expose_service(self.site, deployment, mode=mode, user=user)

    # -- stage 6: query (Figure 7) ---------------------------------------------------------------

    def query(self, exposed: ExposedService, content: str,
              model: str, max_tokens: int = 128):
        """One curl-style chat completion from the user's workstation."""
        client = HttpClient(self.site.fabric, self.site.user_host)
        response = yield from client.post(
            exposed.host, exposed.port, "/v1/chat/completions",
            headers={"Content-Type": "application/json",
                     "Authorization": "Bearer secret-api-key"},
            json={"model": model,
                  "messages": [{"role": "user", "content": content}],
                  "max_tokens": max_tokens,
                  "temperature": 0.7})
        return response

    # -- stage 7: benchmark (Figure 8, Section 3.4) ---------------------------------------------------

    def benchmark_endpoint(self, endpoint: tuple[str, int], model: str,
                           levels=(1, 4, 16, 64, 256, 1024),
                           n_requests: int = 1000, label: str | None = None,
                           client_host: str = "hops-svc",
                           max_total_tokens: int = 4096,
                           seed_stream: str = "bench", on_point=None):
        """Concurrency sweep against a raw (host, port) endpoint."""
        client = BenchmarkClient(self.kernel, self.site.fabric, client_host,
                                 endpoint[0], endpoint[1], model)
        sampler = ShareGptSampler(self.kernel.rng.stream(seed_stream),
                                  max_total_tokens=max_total_tokens)
        sweep = ConcurrencySweep(self.kernel, client, sampler,
                                 n_requests=n_requests, levels=tuple(levels),
                                 on_point=on_point)
        result = yield from sweep.run(label or f"{endpoint[0]}:{model}")
        return result

    def benchmark(self, deployment: Deployment, model: str,
                  levels=(1, 4, 16, 64, 256, 1024), n_requests: int = 1000,
                  label: str | None = None, client_host: str | None = None,
                  max_total_tokens: int = 4096, seed_stream: str = "bench"):
        """Concurrency sweep against a deployment; returns SweepResult."""
        platform = self.site.platform(deployment.platform_name)
        if client_host is None:
            client_host = (platform.service_host
                           if isinstance(platform, HPCPlatform)
                           else platform.cluster.ingress.frontend_host)
        endpoint_host, endpoint_port = deployment.endpoint
        client = BenchmarkClient(
            self.kernel, self.site.fabric, client_host,
            endpoint_host, endpoint_port, model)
        sampler = ShareGptSampler(
            self.kernel.rng.stream(seed_stream),
            max_total_tokens=max_total_tokens)
        sweep = ConcurrencySweep(self.kernel, client, sampler,
                                 n_requests=n_requests, levels=tuple(levels))
        result = yield from sweep.run(
            label or f"{deployment.platform_name}:{model}")
        return result

    # -- demo ----------------------------------------------------------------------------------------

    def run_quick_demo(self, model: str | None = None) -> dict:
        """Seed + deploy + one query on Hops; returns a summary dict."""
        model = model or \
            "RedHatAI/Llama-4-Scout-17B-16E-Instruct-quantized.w4a16"
        self.admin_seed_model(model, "hops")

        def demo(env):
            deployment = yield from self.deploy_model(
                "hops", model, tensor_parallel_size=2)
            exposed = self.expose(deployment, mode="tunnel")
            response = yield from self.query(
                exposed, "How long to get from Earth to Mars?", model)
            return {"deployment": deployment, "exposed": exposed,
                    "response": response.json,
                    "status": response.status}

        return self.run(demo(self.kernel))
