"""Container registries and node-side image caches.

Registries are fabric hosts; pulls transfer only the layers a node does not
already cache (OCI layer dedup).  When many nodes start a multi-node service
at once, their pulls share the registry frontend link — the Section 2.3
bottleneck, measured in ``benchmarks/bench_registry_pull_storm.py``.

Quay-like extras: security scanning on push and cross-registry mirroring,
matching Sandia's GitLab -> Quay promotion flow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..errors import ImagePullError, NotFoundError
from ..net.topology import Fabric
from .image import ImageManifest, parse_ref

if TYPE_CHECKING:  # pragma: no cover
    from ..simkernel import SimKernel


@dataclass
class ScanResult:
    image_digest: str
    findings: int
    scanned_at: float


class ImageCache:
    """Per-node layer cache (containers/storage or apptainer cache dir)."""

    def __init__(self, node_host: str):
        self.node_host = node_host
        self.layers: set[str] = set()
        self.images: dict[str, ImageManifest] = {}

    def has_image(self, ref: str) -> bool:
        return ref in self.images

    def missing_bytes(self, manifest: ImageManifest) -> int:
        return sum(layer.size for layer in manifest.layers
                   if layer.digest not in self.layers)

    def admit(self, manifest: ImageManifest) -> None:
        for layer in manifest.layers:
            self.layers.add(layer.digest)
        self.images[manifest.ref] = manifest

    def evict(self, ref: str) -> bool:
        """Drop an image from the cache (GC / node reimage); layers still
        referenced by other cached images are kept."""
        manifest = self.images.pop(ref, None)
        if manifest is None:
            return False
        still_needed = {layer.digest for image in self.images.values()
                        for layer in image.layers}
        for layer in manifest.layers:
            if layer.digest not in still_needed:
                self.layers.discard(layer.digest)
        return True


class Registry:
    """A container registry bound to a fabric host.

    ``scan_on_push`` models Quay's automatic security scanning;
    ``mirrors_to`` replicates pushed images to another registry after a lag
    (Quay's cross-environment mirroring in the paper).
    """

    def __init__(self, kernel: SimKernel, fabric: Fabric, name: str,
                 host: str, scan_on_push: bool = False,
                 scan_duration: float = 45.0):
        self.kernel = kernel
        self.fabric = fabric
        self.name = name
        self.host = host
        self.scan_on_push = scan_on_push
        self.scan_duration = scan_duration
        self.images: dict[str, ImageManifest] = {}
        self.scans: dict[str, ScanResult] = {}
        self.mirrors_to: list[tuple["Registry", float]] = []
        self.pull_count: dict[str, int] = {}
        self.available = True

    # -- control plane ---------------------------------------------------------

    def add_mirror(self, target: Registry, lag: float = 60.0) -> None:
        self.mirrors_to.append((target, lag))

    def set_available(self, up: bool) -> None:
        """Chaos control: a registry in outage fails every pull."""
        self.available = bool(up)
        self.kernel.trace.emit(
            "registry.restored" if up else "registry.outage",
            registry=self.name)

    def resolve(self, ref: str) -> ImageManifest:
        repo, tag = parse_ref(ref)
        manifest = self.images.get(f"{repo}:{tag}")
        if manifest is None:
            raise NotFoundError(
                f"image {ref!r} not found in registry {self.name!r}")
        return manifest

    def has(self, ref: str) -> bool:
        try:
            self.resolve(ref)
            return True
        except NotFoundError:
            return False

    # -- push ------------------------------------------------------------------------

    def push(self, manifest: ImageManifest, from_host: str | None = None):
        """Push an image (generator).  From a host: bytes move; from
        ``None`` the image appears administratively (seeded content)."""
        if from_host is not None:
            flow = self.fabric.start_transfer(
                from_host, self.host, manifest.size,
                name=f"push:{manifest.ref}")
            yield flow.done
        self.images[manifest.ref] = manifest
        self.kernel.trace.emit("registry.push", registry=self.name,
                               ref=manifest.ref, size=manifest.size)
        if self.scan_on_push:
            yield self.kernel.timeout(self.scan_duration)
            findings = int(self.kernel.rng.stream(
                "registry.scan").integers(0, 12))
            self.scans[manifest.digest] = ScanResult(
                manifest.digest, findings, self.kernel.now)
            self.kernel.trace.emit("registry.scan", registry=self.name,
                                   ref=manifest.ref, findings=findings)
        for target, lag in self.mirrors_to:
            self._mirror(manifest, target, lag)
        return manifest

    def seed(self, manifest: ImageManifest) -> ImageManifest:
        """Administratively add an image (initial site content, no I/O)."""
        self.images[manifest.ref] = manifest
        return manifest

    def _mirror(self, manifest: ImageManifest, target: Registry,
                lag: float) -> None:
        def mirror_proc(env):
            yield env.timeout(lag)
            flow = self.fabric.start_transfer(
                self.host, target.host, manifest.size,
                name=f"mirror:{manifest.ref}")
            yield flow.done
            target.images[manifest.ref] = manifest
            env.trace.emit("registry.mirrored", src=self.name,
                           dst=target.name, ref=manifest.ref)
        self.kernel.spawn(mirror_proc(self.kernel),
                          name=f"mirror:{manifest.ref}")

    # -- pull -------------------------------------------------------------------------

    def pull(self, cache: ImageCache, ref: str):
        """Pull ``ref`` into a node's cache (generator).

        Transfers only missing layer bytes; concurrent pulls contend on the
        registry's access link via the flow network.
        """
        if not self.available:
            raise ImagePullError(
                f"registry {self.name!r} is unavailable (outage)",
                sim_time=self.kernel.now)
        try:
            manifest = self.resolve(ref)
        except NotFoundError as exc:
            raise ImagePullError(str(exc), sim_time=self.kernel.now) from exc
        self.pull_count[manifest.ref] = self.pull_count.get(manifest.ref, 0) + 1
        missing = cache.missing_bytes(manifest)
        if missing > 0:
            flow = self.fabric.start_transfer(
                self.host, cache.node_host, missing,
                name=f"pull:{ref}->{cache.node_host}")
            yield flow.done
        cache.admit(manifest)
        self.kernel.trace.emit("registry.pull", registry=self.name, ref=ref,
                               node=cache.node_host, bytes=missing)
        return manifest
