"""Container substrate: images, registries, and runtimes.

Models the three container paths the paper exercises — Podman and Apptainer
on HPC platforms, CRI under Kubernetes — including their *different default
execution-environment semantics* (the root cause of the vLLM-under-Apptainer
startup crash in Section 3.2), OCI layer pulls with registry contention
(Section 2.3), and flattening OCI images to single-file SIF images on a
parallel filesystem.
"""

from .image import (IMAGE_APPS, ExecutionExpectations, ImageManifest, Layer,
                    SifImage, flatten_to_sif, parse_ref, register_app)
from .registry import ImageCache, Registry
from .runtime import (Container, ContainerApp, ContainerContext,
                      ContainerRuntime, EffectiveEnvironment, RunOpts)
from .podman import PodmanRuntime
from .apptainer import ApptainerRuntime
from .cri import CriRuntime
from . import apps  # noqa: F401  (registers generic app behaviors)

__all__ = [
    "ApptainerRuntime",
    "Container",
    "ContainerApp",
    "ContainerContext",
    "ContainerRuntime",
    "CriRuntime",
    "EffectiveEnvironment",
    "ExecutionExpectations",
    "IMAGE_APPS",
    "ImageCache",
    "ImageManifest",
    "Layer",
    "PodmanRuntime",
    "Registry",
    "RunOpts",
    "SifImage",
    "flatten_to_sif",
    "parse_ref",
    "register_app",
]
