"""OCI images, layers, execution-environment expectations, and SIF flattening.

The paper's Section 4 proposal — *"Container metadata could be used to
encode the execution environment expectations of containerized workloads,
then a tool could use this information to automatically adapt the container
for different container platforms"* — is realised here as
:class:`ExecutionExpectations` attached to :class:`ImageManifest`; the
deployer (``repro.core``) consumes it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from collections.abc import Callable

from ..errors import ConfigurationError, NotFoundError
from ..hardware.gpu import GpuArch
from ..units import GiB


@dataclass(frozen=True)
class Layer:
    """One OCI layer: content-addressed blob of a given size."""

    digest: str
    size: int

    @staticmethod
    def make(seed: str, size: int) -> Layer:
        digest = "sha256:" + hashlib.sha256(seed.encode()).hexdigest()[:16]
        return Layer(digest=digest, size=size)


@dataclass(frozen=True)
class ExecutionExpectations:
    """What the containerized app assumes about its execution environment.

    Each flag corresponds to a concrete failure mode observed in the paper's
    case study when Apptainer's defaults diverge from Podman's.
    """

    run_as_root: bool = False       # app writes to /root (e.g. HF cache)
    writable_rootfs: bool = False   # app writes outside mounted volumes
    isolated_home: bool = False     # stray $HOME content breaks the app
    clean_env: bool = False         # stray host env vars break the app
    host_network: bool = False      # server binds host ports
    host_ipc: bool = False          # NCCL/shared-memory for multi-GPU
    needs_gpus: bool = False


@dataclass(frozen=True)
class ImageManifest:
    """An OCI image: named reference, layers, arch variant, app binding.

    ``app`` names a behavior registered via :func:`register_app`; when a
    runtime starts a container from this image, that factory provides the
    simulated application (e.g. the vLLM server).
    ``gpu_arch`` is None for CPU-only images; otherwise the vendor stack the
    image was built for — upstream vLLM ships CUDA, AMD ships ROCm builds.
    """

    repository: str
    tag: str
    layers: tuple[Layer, ...]
    app: str = "noop"
    gpu_arch: GpuArch | None = None
    expectations: ExecutionExpectations = ExecutionExpectations()
    entrypoint: str = ""
    labels: dict[str, str] = field(default_factory=dict)

    def __post_init__(self):
        if not self.layers:
            raise ConfigurationError("image needs at least one layer")

    @property
    def ref(self) -> str:
        return f"{self.repository}:{self.tag}"

    @property
    def size(self) -> int:
        return sum(layer.size for layer in self.layers)

    @property
    def digest(self) -> str:
        joined = ",".join(layer.digest for layer in self.layers)
        return "sha256:" + hashlib.sha256(joined.encode()).hexdigest()[:16]

    def retag(self, repository: str | None = None,
              tag: str | None = None) -> ImageManifest:
        return replace(self, repository=repository or self.repository,
                       tag=tag or self.tag)


def parse_ref(ref: str) -> tuple[str, str]:
    """Split ``repo/name:tag`` into (repository, tag); tag defaults latest."""
    if ":" in ref.rsplit("/", 1)[-1]:
        repo, tag = ref.rsplit(":", 1)
    else:
        repo, tag = ref, "latest"
    if not repo:
        raise ConfigurationError(f"bad image reference {ref!r}")
    return repo, tag


#: Compression win from flattening stacked OCI layers into one SquashFS/SIF
#: file (dedup of whiteouts and shared files).
SIF_COMPRESSION = 0.85


@dataclass(frozen=True)
class SifImage:
    """A flattened single-file image (SquashFS/Singularity Image Format).

    Stored on a filesystem path instead of a registry; avoids the registry
    pull storm because the parallel FS serves all nodes at once.
    """

    path: str
    size: int
    source: ImageManifest

    @property
    def ref(self) -> str:
        return self.path


def flatten_to_sif(manifest: ImageManifest, path: str) -> SifImage:
    """Flatten an OCI image to a SIF file (metadata only; the *build* time
    and byte movement are charged where it happens — see ApptainerRuntime)."""
    return SifImage(path=path, size=int(manifest.size * SIF_COMPRESSION),
                    source=manifest)


# -- app behavior registry -------------------------------------------------------

IMAGE_APPS: dict[str, Callable] = {}


def register_app(name: str):
    """Decorator: bind an app factory to an image ``app`` key."""
    def deco(factory: Callable):
        IMAGE_APPS[name] = factory
        return factory
    return deco


def app_factory(name: str) -> Callable:
    try:
        return IMAGE_APPS[name]
    except KeyError:
        raise NotFoundError(
            f"no app behavior registered for {name!r}; "
            f"known: {sorted(IMAGE_APPS)}") from None


# -- stock image builders ----------------------------------------------------------


def make_layers(seed: str, total_size: int, count: int = 8) -> tuple[Layer, ...]:
    """Split ``total_size`` into ``count`` layers with a realistic skew
    (one dominant CUDA/ROCm layer plus small config layers)."""
    if count < 1:
        raise ConfigurationError("need at least one layer")
    if count == 1:
        return (Layer.make(f"{seed}:0", total_size),)
    big = int(total_size * 0.7)
    rest = total_size - big
    small = rest // (count - 1)
    layers = [Layer.make(f"{seed}:0", big)]
    for i in range(1, count - 1):
        layers.append(Layer.make(f"{seed}:{i}", small))
    layers.append(Layer.make(f"{seed}:{count-1}",
                             total_size - big - small * (count - 2)))
    return tuple(layers)


def vllm_cuda_image(tag: str = "v0.9.1") -> ImageManifest:
    """The upstream vLLM OpenAI server image (CUDA build, ~15 GiB)."""
    return ImageManifest(
        repository="vllm/vllm-openai",
        tag=tag,
        layers=make_layers(f"vllm-cuda:{tag}", 15 * GiB),
        app="vllm-openai",
        gpu_arch=GpuArch.CUDA,
        expectations=ExecutionExpectations(
            run_as_root=True, writable_rootfs=True, isolated_home=True,
            clean_env=True, host_network=True, host_ipc=True,
            needs_gpus=True),
        entrypoint="vllm",
        labels={"org.opencontainers.image.source":
                "https://github.com/vllm-project/vllm"},
    )


def vllm_rocm_image(tag: str = "rocm6.4.1_vllm_0.9.1_20250702") -> ImageManifest:
    """AMD's ROCm build of vLLM (paper Figure 8 uses this image)."""
    return ImageManifest(
        repository="rocm/vllm",
        tag=tag,
        layers=make_layers(f"vllm-rocm:{tag}", 18 * GiB),
        app="vllm-openai",
        gpu_arch=GpuArch.ROCM,
        expectations=ExecutionExpectations(
            run_as_root=True, writable_rootfs=True, isolated_home=True,
            clean_env=True, host_network=True, host_ipc=True,
            needs_gpus=True),
        entrypoint="vllm",
    )


def alpine_git_image() -> ImageManifest:
    """alpine/git used for containerized model downloads (paper Figure 2)."""
    return ImageManifest(
        repository="alpine/git", tag="latest",
        layers=make_layers("alpine-git", 40 * 1024 * 1024, count=3),
        app="git-clone", entrypoint="git")


def aws_cli_image() -> ImageManifest:
    """amazon/aws-cli used for S3 uploads (paper Figure 3)."""
    return ImageManifest(
        repository="amazon/aws-cli", tag="latest",
        layers=make_layers("aws-cli", 400 * 1024 * 1024, count=4),
        app="aws-cli", entrypoint="aws")
