"""CRI runtime used by the Kubernetes kubelet.

Pod semantics: containers run as root with a writable overlay, isolated
home and environment, and pod-level networking/IPC that satisfies server
workloads (the image's host_network/host_ipc expectations map to the pod
sandbox, which Kubernetes provides natively).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..hardware.node import Node
from .image import ImageManifest, SifImage
from .registry import ImageCache, Registry
from .runtime import ContainerRuntime, EffectiveEnvironment, RunOpts

if TYPE_CHECKING:  # pragma: no cover
    from ..simkernel import SimKernel
    from ..net.topology import Fabric


class CriRuntime(ContainerRuntime):
    """Container runtime interface used by kubelets."""

    name = "cri"

    def __init__(self, kernel: SimKernel, fabric: Fabric,
                 registry: Registry):
        super().__init__(kernel, fabric)
        self.registry = registry
        self.caches: dict[str, ImageCache] = {}

    def cache_for(self, node: Node) -> ImageCache:
        cache = self.caches.get(node.hostname)
        if cache is None:
            cache = ImageCache(node.hostname)
            self.caches[node.hostname] = cache
        return cache

    def effective_environment(self, opts: RunOpts,
                              gpus_visible: int) -> EffectiveEnvironment:
        return EffectiveEnvironment(
            runtime=self.name,
            run_as_root=True,
            writable_rootfs=True,
            isolated_home=True,
            clean_env=True,
            host_network=True,   # pod sandbox networking (bindable + routable)
            host_ipc=True,       # pod-shared IPC namespace
            gpus_visible=gpus_visible,
        )

    def stage_image(self, node: Node, image: ImageManifest | SifImage | str):
        if isinstance(image, SifImage):
            raise TypeError("kubelet runs OCI images, not SIF files")
        ref = image.ref if isinstance(image, ImageManifest) else image
        cache = self.cache_for(node)
        if cache.has_image(ref):
            return cache.images[ref]
        manifest = yield from self.registry.pull(cache, ref)
        return manifest

    def cli(self, image_ref: str, opts: RunOpts) -> list[str]:
        # Kubernetes has no CLI equivalent; the Helm chart is the artifact.
        return ["kubectl", "run", opts.name or "pod", f"--image={image_ref}"]
