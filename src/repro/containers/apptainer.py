"""Apptainer-like runtime: user-mapped, home-automounting by default.

Section 3.2: *"Apptainer, by default, runs the container as the calling
user and automatically maps in their home directory.  These differences
cause the vLLM container to crash at startup using Apptainer's default
configuration."*  The paper's Figure 5 shows the adapted flags —
``--fakeroot --writable-tmpfs --cleanenv --no-home --nv`` — all modeled
here, plus OCI->SIF conversion when given a non-SIF reference.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..errors import ConfigurationError
from ..hardware.node import Node
from ..storage.filesystem import ParallelFilesystem
from .image import ImageManifest, SifImage, flatten_to_sif
from .registry import ImageCache, Registry
from .runtime import ContainerRuntime, EffectiveEnvironment, RunOpts

if TYPE_CHECKING:  # pragma: no cover
    from ..simkernel import SimKernel
    from ..net.topology import Fabric

#: apptainer build: unpack + mksquashfs rate, bytes/second.
SIF_BUILD_RATE = 400e6


class ApptainerRuntime(ContainerRuntime):
    """Apptainer with a parallel-filesystem SIF store.

    Running an OCI reference triggers ``apptainer build`` (pull + flatten
    to SIF on the platform filesystem); running a :class:`SifImage` that is
    already on the filesystem skips the registry entirely — the Section 2.3
    mitigation for registry pull storms.
    """

    name = "apptainer"

    def __init__(self, kernel: SimKernel, fabric: Fabric,
                 registry: Registry, filesystem: ParallelFilesystem):
        super().__init__(kernel, fabric)
        self.registry = registry
        self.filesystem = filesystem
        self.caches: dict[str, ImageCache] = {}
        self.sif_store: dict[str, SifImage] = {}

    def cache_for(self, node: Node) -> ImageCache:
        cache = self.caches.get(node.hostname)
        if cache is None:
            cache = ImageCache(node.hostname)
            self.caches[node.hostname] = cache
        return cache

    def effective_environment(self, opts: RunOpts,
                              gpus_visible: int) -> EffectiveEnvironment:
        return EffectiveEnvironment(
            runtime=self.name,
            run_as_root=opts.apptainer_fakeroot,
            writable_rootfs=opts.apptainer_writable_tmpfs,
            isolated_home=opts.apptainer_no_home,
            clean_env=opts.apptainer_cleanenv,
            host_network=True,   # apptainer shares the host network ns
            host_ipc=True,       # and the host IPC ns
            gpus_visible=gpus_visible if opts.apptainer_nv else 0,
        )

    # -- SIF management -----------------------------------------------------------

    def build_sif(self, node: Node, ref: str, path: str):
        """``apptainer build``: pull OCI layers then flatten to a SIF file
        on the parallel filesystem (generator; returns SifImage)."""
        cache = self.cache_for(node)
        manifest = yield from self.registry.pull(cache, ref)
        yield self.kernel.timeout(manifest.size / SIF_BUILD_RATE)
        sif = flatten_to_sif(manifest, path)
        yield from self.filesystem.write(node.hostname, path, sif.size)
        self.sif_store[path] = sif
        self.kernel.trace.emit("apptainer.build", ref=ref, path=path,
                               size=sif.size)
        return sif

    def stage_image(self, node: Node, image: ImageManifest | SifImage | str):
        if isinstance(image, SifImage):
            if image.path not in self.sif_store and \
                    not self.filesystem.exists(image.path):
                raise ConfigurationError(
                    f"SIF file {image.path!r} not found on "
                    f"{self.filesystem.name}")
            # Node reads the SIF from the parallel FS (page cache warm-up);
            # all nodes share the FS bandwidth rather than the registry.
            yield from self.filesystem.read(node.hostname, image.path)
            return image.source
        ref = image.ref if isinstance(image, ImageManifest) else image
        sif_path = f"/images/{ref.replace('/', '_').replace(':', '_')}.sif"
        existing = self.sif_store.get(sif_path)
        if existing is None:
            existing = yield from self.build_sif(node, ref, sif_path)
        else:
            yield from self.filesystem.read(node.hostname, sif_path)
        return existing.source

    def cli(self, image_ref: str, opts: RunOpts) -> list[str]:
        """Equivalent ``apptainer exec`` argv (cf. paper Figure 5)."""
        argv = ["apptainer", "exec"]
        if opts.apptainer_fakeroot:
            argv.append("--fakeroot")
        if opts.apptainer_writable_tmpfs:
            argv.append("--writable-tmpfs")
        if opts.apptainer_cleanenv:
            argv.append("--cleanenv")
        if opts.apptainer_no_home:
            argv.append("--no-home")
        if opts.apptainer_nv:
            argv.append("--nv")
        for key, value in opts.env.items():
            argv.append(f'-e "{key}={value}"')
        for host_path, cont_path in opts.volumes.items():
            argv.append(f"--bind {host_path}:{cont_path}")
        if opts.workdir:
            argv.append(f"--cwd {opts.workdir}")
        argv.append(image_ref)
        if opts.entrypoint:
            argv.append(opts.entrypoint)
        argv.extend(opts.command)
        return argv
