"""Container runtime core: run options, effective environments, lifecycle.

The paper's central observation is that Podman, Apptainer, and Kubernetes
present *different default execution environments* to the same container
image.  We make that explicit: a runtime maps :class:`RunOpts` to an
:class:`EffectiveEnvironment`; the containerized app validates the image's
:class:`~repro.containers.image.ExecutionExpectations` against it at startup
and crashes on mismatch — exactly how the vLLM container fails under
Apptainer's defaults in Section 3.2.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from ..errors import ConfigurationError, ContainerCrash, StateError
from ..hardware.node import Node
from ..simkernel import Event, Interrupted
from .image import ImageManifest, SifImage, app_factory

if TYPE_CHECKING:  # pragma: no cover
    from ..simkernel import SimKernel
    from ..net.topology import Fabric


@dataclass
class RunOpts:
    """Portable subset of container run options plus runtime-specific flags.

    The generic fields cover Podman/K8s; the ``apptainer_*`` flags are the
    adaptation knobs from the paper's Figure 5 (``--fakeroot``,
    ``--writable-tmpfs``, ``--cleanenv``, ``--no-home``, ``--nv``).
    """

    name: str = ""
    env: dict[str, str] = field(default_factory=dict)
    volumes: dict[str, str] = field(default_factory=dict)  # host -> container
    #: simulation-side data handles: container path -> MountHandle
    mounts: dict[str, Any] = field(default_factory=dict)
    #: simulation-side extras (fault plans, perf profiles, cluster handles)
    extras: dict[str, Any] = field(default_factory=dict)
    workdir: str = ""
    entrypoint: str | None = None
    command: tuple[str, ...] = ()
    network_host: bool = False
    ipc_host: bool = False
    gpus: str | int | None = None  # "all", a count, or None
    remove_on_exit: bool = True
    # Apptainer-specific adaptation flags:
    apptainer_fakeroot: bool = False
    apptainer_writable_tmpfs: bool = False
    apptainer_cleanenv: bool = False
    apptainer_no_home: bool = False
    apptainer_nv: bool = False


@dataclass(frozen=True)
class EffectiveEnvironment:
    """The environment a runtime actually presents to the container."""

    runtime: str
    run_as_root: bool
    writable_rootfs: bool
    isolated_home: bool
    clean_env: bool
    host_network: bool
    host_ipc: bool
    gpus_visible: int


class ContainerContext:
    """Everything an app sees: node, env vars, GPUs, network identity."""

    def __init__(self, kernel: SimKernel, fabric: Fabric, node: Node,
                 container: Container, effective: EffectiveEnvironment,
                 opts: RunOpts):
        self.kernel = kernel
        self.fabric = fabric
        self.node = node
        self.container = container
        self.effective = effective
        self.opts = opts
        self.env = dict(opts.env)
        self.gpu_indices: list[int] = []
        self.stop_event: Event = kernel.event()

    @property
    def hostname(self) -> str:
        return self.node.hostname

    def mount(self, container_path: str):
        """The MountHandle at ``container_path`` (longest-prefix match)."""
        best = None
        for path, handle in self.opts.mounts.items():
            if container_path == path or container_path.startswith(
                    path.rstrip("/") + "/"):
                if best is None or len(path) > len(best[0]):
                    best = (path, handle)
        if best is None:
            raise ConfigurationError(
                f"no mount provides {container_path!r}; "
                f"mounts: {sorted(self.opts.mounts)}")
        return best[1]

    def check_expectations(self) -> None:
        """Raise :class:`ContainerCrash` if the environment violates the
        image's declared expectations (app startup failure)."""
        exp = self.container.image.expectations
        eff = self.effective
        problems: list[str] = []
        if exp.run_as_root and not eff.run_as_root:
            problems.append(
                "EACCES: cannot write /root/.cache/huggingface "
                "(container runs as calling user, expected root)")
        if exp.writable_rootfs and not eff.writable_rootfs:
            problems.append(
                "OSError: read-only file system: '/vllm-workspace/.cache'")
        if exp.isolated_home and not eff.isolated_home:
            problems.append(
                "startup picked up ~/.local site-packages from the "
                "auto-mounted home directory and failed to import torch")
        if exp.clean_env and not eff.clean_env:
            problems.append(
                "host environment leaked into the container "
                "(e.g. PYTHONPATH) and broke the bundled python")
        if exp.host_network and not eff.host_network:
            problems.append(
                "server bound inside an isolated network namespace; "
                "endpoint unreachable (need --network=host)")
        if exp.host_ipc and not eff.host_ipc:
            problems.append(
                "NCCL error: shared memory unavailable (need --ipc=host)")
        if exp.needs_gpus and eff.gpus_visible == 0:
            problems.append("RuntimeError: no GPU devices visible")
        if problems:
            raise ContainerCrash(
                f"{self.container.image.ref} failed under "
                f"{eff.runtime} defaults: " + "; ".join(problems),
                sim_time=self.kernel.now)


class ContainerApp:
    """Base class for simulated containerized applications.

    ``startup`` runs to readiness (may take simulated time and crash);
    ``run`` is the long-running phase (servers wait for ``ctx.stop_event``,
    batch jobs return immediately).  Both are generators.
    """

    def startup(self, ctx: ContainerContext):
        ctx.check_expectations()
        return
        yield  # pragma: no cover - makes this a generator

    def run(self, ctx: ContainerContext):
        return
        yield  # pragma: no cover

    def shutdown(self, ctx: ContainerContext) -> None:
        """Synchronous cleanup on stop/crash."""


class Container:
    """A container instance on a node.

    Events: ``ready`` fires when startup completes (fails on startup
    crash); ``exited`` always *succeeds* with the integer exit code, so
    supervisors (Kubernetes controllers) can observe crashes without
    exception plumbing.
    """

    _ids = itertools.count(1)

    def __init__(self, kernel: SimKernel, fabric: Fabric, node: Node,
                 image: ImageManifest, runtime: ContainerRuntime,
                 opts: RunOpts, effective: EffectiveEnvironment):
        self.id = f"c{next(Container._ids):05d}"
        self.kernel = kernel
        self.image = image
        self.node = node
        self.runtime = runtime
        self.opts = opts
        self.name = opts.name or f"{image.repository.split('/')[-1]}-{self.id}"
        self.state = "created"
        self.exit_code: int | None = None
        self.ready: Event = kernel.event()
        self.exited: Event = kernel.event()
        self.ctx = ContainerContext(kernel, fabric, node, self, effective, opts)
        # A custom entrypoint can rebind the container behavior (e.g. the
        # multi-node flow runs the vLLM image with a Ray bootstrap
        # entrypoint, paper Fig. 11).
        app_key = opts.extras.get("app_override", image.app)
        self.app: ContainerApp = app_factory(app_key)()
        self._proc = None

    def start(self) -> None:
        if self.state != "created":
            raise StateError(f"container {self.name} already {self.state}")
        self.state = "running"
        self._proc = self.kernel.spawn(self._lifecycle(self.kernel),
                                       name=f"container:{self.name}")
        self.kernel.trace.emit("container.start", name=self.name,
                               image=self.image.ref,
                               node=self.node.hostname,
                               runtime=self.runtime.name)

    def _lifecycle(self, env):
        try:
            yield from self.app.startup(self.ctx)
        except Interrupted:
            self._finish(137, "stopped during startup")
            return
        except ContainerCrash as crash:
            if not self.ready.triggered:
                self.ready.fail(crash)
            self._finish(1, str(crash))
            return
        except Exception as exc:  # app bug: surface as a crash, not a hang
            crash = ContainerCrash(f"{self.name}: startup error: {exc!r}",
                                   sim_time=self.kernel.now)
            if not self.ready.triggered:
                self.ready.fail(crash)
            self._finish(1, str(crash))
            return
        if not self.ready.triggered:
            self.ready.succeed(self)
        try:
            yield from self.app.run(self.ctx)
        except Interrupted:
            self._finish(137, "stopped")
            return
        except ContainerCrash as crash:
            self._finish(1, str(crash))
            return
        except Exception as exc:  # app bug: crash, don't hang
            self._finish(1, f"runtime error: {exc!r}")
            return
        self._finish(0, "completed")

    def _finish(self, code: int, reason: str) -> None:
        self.state = "exited"
        self.exit_code = code
        try:
            self.app.shutdown(self.ctx)
        finally:
            self.runtime._release(self)
            if not self.ready.triggered:
                # Batch containers may exit before anyone awaited readiness.
                if code == 0:
                    self.ready.succeed(self)
                else:
                    self.ready.fail(ContainerCrash(reason,
                                                   sim_time=self.kernel.now))
            self.exited.succeed(code)
            self.kernel.trace.emit("container.exit", name=self.name,
                                   code=code, reason=reason)

    def stop(self) -> None:
        """SIGTERM: interrupt the app; exit code 137 if it was running."""
        if self.state == "running" and self._proc is not None:
            self._proc.interrupt("stop")

    @property
    def running(self) -> bool:
        return self.state == "running"


class ContainerRuntime:
    """Base runtime: image staging + environment mapping + lifecycle."""

    name = "abstract"

    def __init__(self, kernel: SimKernel, fabric: Fabric):
        self.kernel = kernel
        self.fabric = fabric
        self.containers: list[Container] = []

    # -- to be provided by concrete runtimes ------------------------------------

    def effective_environment(self, opts: RunOpts,
                              gpus_visible: int) -> EffectiveEnvironment:
        raise NotImplementedError

    def stage_image(self, node: Node, image: ImageManifest | SifImage | str):
        """Generator: make the image available locally; returns manifest."""
        raise NotImplementedError

    def cli(self, image_ref: str, opts: RunOpts) -> list[str]:
        """The equivalent command line (for docs / artifact generation)."""
        raise NotImplementedError

    # -- common ---------------------------------------------------------------------

    def _gpu_count(self, node: Node, opts: RunOpts) -> int:
        if opts.gpus is None:
            return 0
        if opts.gpus == "all":
            return node.gpus_free
        return int(opts.gpus)

    def run(self, node: Node, image: ImageManifest | SifImage | str,
            opts: RunOpts | None = None):
        """Generator: stage the image, create and start the container.

        Returns the :class:`Container` as soon as it is *started* —
        callers wait on ``container.ready`` for app readiness.
        """
        opts = opts or RunOpts()
        manifest = yield from self.stage_image(node, image)
        n_gpus = self._gpu_count(node, opts)
        gpu_indices = node.allocate_gpus(n_gpus) if n_gpus else []
        effective = self.effective_environment(opts, gpus_visible=n_gpus)
        container = Container(self.kernel, self.fabric, node, manifest,
                              self, opts, effective)
        container.ctx.gpu_indices = gpu_indices
        self.containers.append(container)
        container.start()
        return container

    def _release(self, container: Container) -> None:
        if container.ctx.gpu_indices:
            container.node.release_gpus(container.ctx.gpu_indices)
            container.ctx.gpu_indices = []

    @staticmethod
    def _env_args(opts: RunOpts, flag: str = "-e") -> list[str]:
        return [f'{flag} "{k}={v}"' for k, v in opts.env.items()]
