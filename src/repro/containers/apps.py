"""Generic container app behaviors (test/support plumbing).

Real application behaviors (vLLM server, git clone, aws-cli sync, vector
DB) live with their subsystems and register themselves under the image
``app`` key via :func:`repro.containers.image.register_app`.
"""

from __future__ import annotations

from .image import register_app
from .runtime import ContainerApp, ContainerContext


@register_app("noop")
class NoopApp(ContainerApp):
    """Starts instantly, exits immediately (exit code 0)."""


@register_app("sleep")
class SleepApp(ContainerApp):
    """Batch app: runs for ``REPRO_SLEEP`` simulated seconds, then exits."""

    def run(self, ctx: ContainerContext):
        duration = float(ctx.env.get("REPRO_SLEEP", "1"))
        yield ctx.kernel.timeout(duration)


@register_app("server")
class ServerApp(ContainerApp):
    """Long-running service: validates expectations, then serves until
    stopped.  ``REPRO_STARTUP`` controls simulated startup seconds."""

    def startup(self, ctx: ContainerContext):
        ctx.check_expectations()
        delay = float(ctx.env.get("REPRO_STARTUP", "0"))
        if delay:
            yield ctx.kernel.timeout(delay)

    def run(self, ctx: ContainerContext):
        yield ctx.stop_event
