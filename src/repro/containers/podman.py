"""Podman-like runtime: rootful-in-container, isolated-by-default.

Matches the paper's Figure 4 deployment path on HPC platforms.  Podman's
defaults suit the vLLM image (isolated environment, root inside the
container); host network/IPC and GPU access are opt-in flags.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..hardware.node import Node
from .image import ImageManifest, SifImage
from .registry import ImageCache, Registry
from .runtime import ContainerRuntime, EffectiveEnvironment, RunOpts

if TYPE_CHECKING:  # pragma: no cover
    from ..simkernel import SimKernel
    from ..net.topology import Fabric


class PodmanRuntime(ContainerRuntime):
    """Per-platform Podman installation pulling from a registry."""

    name = "podman"

    def __init__(self, kernel: SimKernel, fabric: Fabric,
                 registry: Registry):
        super().__init__(kernel, fabric)
        self.registry = registry
        self.caches: dict[str, ImageCache] = {}

    def cache_for(self, node: Node) -> ImageCache:
        cache = self.caches.get(node.hostname)
        if cache is None:
            cache = ImageCache(node.hostname)
            self.caches[node.hostname] = cache
        return cache

    def effective_environment(self, opts: RunOpts,
                              gpus_visible: int) -> EffectiveEnvironment:
        return EffectiveEnvironment(
            runtime=self.name,
            run_as_root=True,        # default user inside a podman container
            writable_rootfs=True,    # copy-on-write upper layer
            isolated_home=True,      # no automatic $HOME bind mount
            clean_env=True,          # only -e vars enter the container
            host_network=opts.network_host,
            host_ipc=opts.ipc_host,
            gpus_visible=gpus_visible,
        )

    def stage_image(self, node: Node, image: ImageManifest | SifImage | str):
        if isinstance(image, SifImage):
            raise TypeError("podman runs OCI images, not SIF files")
        ref = image.ref if isinstance(image, ImageManifest) else image
        cache = self.cache_for(node)
        if cache.has_image(ref):
            return cache.images[ref]
        manifest = yield from self.registry.pull(cache, ref)
        return manifest

    def cli(self, image_ref: str, opts: RunOpts) -> list[str]:
        """Equivalent ``podman run`` argv (cf. paper Figure 4)."""
        argv = ["podman", "run"]
        if opts.remove_on_exit:
            argv.append("--rm")
        if opts.name:
            argv.append(f"--name={opts.name}")
        if opts.network_host:
            argv.append("--network=host")
        if opts.ipc_host:
            argv.append("--ipc=host")
        if opts.entrypoint is not None:
            argv.append(f"--entrypoint={opts.entrypoint}")
        if opts.gpus is not None:
            spec = "all" if opts.gpus == "all" else str(opts.gpus)
            argv.append(f"--device nvidia.com/gpu={spec}")
        for key, value in opts.env.items():
            argv.append(f'-e "{key}={value}"')
        for host_path, cont_path in opts.volumes.items():
            argv.append(f"--volume={host_path}:{cont_path}")
        if opts.workdir:
            argv.append(f"--workdir={opts.workdir}")
        argv.append(image_ref)
        argv.extend(opts.command)
        return argv
