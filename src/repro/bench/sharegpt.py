"""ShareGPT-like workload sampler.

The paper streams requests sampled from the ShareGPT V3 unfiltered-cleaned
dataset ("seemed to provide the most realistic scenario").  The benchmark
consumes only (prompt_len, output_len) pairs, so we sample from log-normal
distributions fitted to the published ShareGPT length statistics used by
vLLM's own benchmark: mean prompt ~220 tokens, mean response ~200 tokens,
heavy right tails, both truncated to the serving window.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError

#: Log-normal parameters fitted to ShareGPT conversation turns (tokens),
#: with the output tail tempered to reflect vLLM's benchmark filtering of
#: over-long completions (the raw dataset's tail is clipped there).
PROMPT_MU, PROMPT_SIGMA = 4.90, 1.00     # median ~134, mean ~221
OUTPUT_MU, OUTPUT_SIGMA = 4.95, 0.70     # median ~141, mean ~181
MIN_TOKENS = 4


@dataclass(frozen=True)
class SampledRequest:
    """One benchmark request: lengths only (contents never matter)."""

    prompt_tokens: int
    output_tokens: int

    @property
    def total_tokens(self) -> int:
        return self.prompt_tokens + self.output_tokens


class ShareGptSampler:
    """Seeded sampler of ShareGPT-like request length pairs."""

    def __init__(self, rng: np.random.Generator,
                 max_total_tokens: int = 4096):
        if max_total_tokens < 2 * MIN_TOKENS:
            raise ConfigurationError("max_total_tokens too small")
        self.rng = rng
        self.max_total_tokens = max_total_tokens

    def sample(self, n: int) -> list[SampledRequest]:
        """Draw ``n`` requests (vectorised; deterministic per seed)."""
        if n < 1:
            raise ConfigurationError("need at least one request")
        prompts = np.exp(self.rng.normal(PROMPT_MU, PROMPT_SIGMA, size=n))
        outputs = np.exp(self.rng.normal(OUTPUT_MU, OUTPUT_SIGMA, size=n))
        return self._finish(prompts, outputs)

    def sample_pairs(self, n: int) -> list[SampledRequest]:
        """``n`` consecutive ``sample(1)`` calls, batched, same stream.

        ``sample(1)`` draws one prompt normal then one output normal, so
        ``n`` calls consume ``2n`` interleaved draws.  One vectorized
        ``standard_normal(2n)`` consumes the generator's bit stream
        identically (loc/scale are applied after the unit draws);
        de-interleaving reproduces every pair bit-for-bit — the fleet
        fast-forward path batches whole arrival blocks through here
        without perturbing any seeded request sequence.
        """
        if n < 1:
            raise ConfigurationError("need at least one request")
        unit = self.rng.standard_normal(2 * n)
        prompts = np.exp(PROMPT_MU + PROMPT_SIGMA * unit[0::2])
        outputs = np.exp(OUTPUT_MU + OUTPUT_SIGMA * unit[1::2])
        return self._finish(prompts, outputs)

    def _finish(self, prompts: np.ndarray,
                outputs: np.ndarray) -> list[SampledRequest]:
        prompts = np.clip(prompts.astype(int), MIN_TOKENS, None)
        outputs = np.clip(outputs.astype(int), MIN_TOKENS, None)
        out: list[SampledRequest] = []
        for p, o in zip(prompts, outputs, strict=True):
            total = p + o
            if total > self.max_total_tokens:
                # Proportionally shrink (vLLM's bench filters/truncates).
                scale = self.max_total_tokens / total
                p = max(MIN_TOKENS, int(p * scale))
                o = max(MIN_TOKENS, int(o * scale))
            out.append(SampledRequest(int(p), int(o)))
        return out

    @staticmethod
    def dataset_name() -> str:
        return "ShareGPT_V3_unfiltered_cleaned_split.json (synthetic-equivalent)"
