"""Benchmark harness: the ``benchmark_serving.py`` equivalent.

``repro.bench`` reproduces the paper's methodology (Section 3.4): stream
1000 ShareGPT-sampled requests at a target endpoint with a bounded
``--max-concurrency``, sweep that bound in powers of two from 1 to 1024,
and report output-token throughput per level — the series plotted in
Figures 9, 10, and 12.
"""

from .sharegpt import ShareGptSampler, SampledRequest
from .client import BenchmarkClient, BenchmarkResult
from .sweep import ConcurrencySweep, SweepPoint, SweepResult

__all__ = [
    "BenchmarkClient",
    "BenchmarkResult",
    "ConcurrencySweep",
    "SampledRequest",
    "ShareGptSampler",
    "SweepPoint",
    "SweepResult",
]
