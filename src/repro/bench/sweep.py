"""Concurrency sweeps: the outer loop around the benchmark client.

"In our evaluations, we perform multiple runs of the benchmark sweeping the
maximum request concurrency from 1 to 1024 in powers of two steps."  Each
sweep point sends a fresh stream of sampled queries; a crash mid-sweep ends
the run (Fig. 12 run 1 stops at 512 with the crash annotated).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable
from typing import TYPE_CHECKING

from .client import BenchmarkClient, BenchmarkResult
from .sharegpt import ShareGptSampler

if TYPE_CHECKING:  # pragma: no cover
    from ..simkernel import SimKernel

DEFAULT_LEVELS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)


@dataclass
class SweepPoint:
    concurrency: int
    result: BenchmarkResult

    @property
    def throughput(self) -> float:
        return self.result.output_throughput


@dataclass
class SweepResult:
    """One curve of a paper figure (one run on one platform)."""

    label: str
    points: list[SweepPoint] = field(default_factory=list)
    terminated_early: str | None = None

    def series(self) -> list[tuple[int, float]]:
        return [(p.concurrency, p.throughput) for p in self.points]

    def throughput_at(self, concurrency: int) -> float:
        for p in self.points:
            if p.concurrency == concurrency:
                return p.throughput
        raise KeyError(f"no sweep point at concurrency {concurrency}")

    def to_json(self) -> dict:
        """Machine-readable artifact (one full row per sweep point)."""
        return {
            "label": self.label,
            "points": [p.result.row() for p in self.points],
            "terminated_early": self.terminated_early,
        }

    def table(self) -> str:
        """gnuplot-style data block like the paper's artifact files."""
        lines = [f"# {self.label}",
                 "# max_concurrency  output_tok_per_s  completed  "
                 "errors  duration_s"]
        for p in self.points:
            r = p.result
            lines.append(f"{p.concurrency:>6d}  {r.output_throughput:10.1f}  "
                         f"{r.completed:5d}  {r.errors:3d}  {r.duration:9.1f}")
        if self.terminated_early:
            lines.append(f"# terminated early: {self.terminated_early}")
        return "\n".join(lines)


class ConcurrencySweep:
    """Runs a client across concurrency levels with fresh request streams."""

    def __init__(self, kernel: SimKernel, client: BenchmarkClient,
                 sampler: ShareGptSampler, n_requests: int = 1000,
                 levels: tuple[int, ...] = DEFAULT_LEVELS,
                 on_point: Callable[[SweepPoint], None] | None = None):
        self.kernel = kernel
        self.client = client
        self.sampler = sampler
        self.n_requests = n_requests
        self.levels = levels
        self.on_point = on_point

    def run(self, label: str):
        """Generator: returns a :class:`SweepResult`."""
        sweep = SweepResult(label=label)
        for level in self.levels:
            requests = self.sampler.sample(self.n_requests)
            result = yield from self.client.run(requests, level)
            point = SweepPoint(concurrency=level, result=result)
            sweep.points.append(point)
            if self.on_point is not None:
                self.on_point(point)
            if result.crashed:
                sweep.terminated_early = (
                    f"crash at concurrency {level}: {result.error_sample}")
                break
        return sweep
