"""Closed-loop benchmark client with bounded request concurrency.

Equivalent of ``benchmark_serving.py --max-concurrency N`` (paper Figure 8):
N workers each keep one request in flight against the OpenAI endpoint; the
stream of 1000 sampled requests is drained from a shared queue.  "A maximum
request concurrency of 1 means that a single request at a time is sent...
while a batch size of 16 means that up to 16 requests at a time are sent
before waiting for a response completion."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..errors import APIError, NetworkUnreachable, ReproError
from ..net.http import HttpClient
from .sharegpt import SampledRequest

if TYPE_CHECKING:  # pragma: no cover
    from ..net.topology import Fabric
    from ..simkernel import SimKernel

#: Abort the run when this fraction of requests has errored (crash detect).
ERROR_ABORT_FRACTION = 0.05


@dataclass
class BenchmarkResult:
    """Metrics for one benchmark run at one concurrency level."""

    concurrency: int
    n_requests: int
    completed: int = 0
    errors: int = 0
    duration: float = 0.0
    total_output_tokens: int = 0
    total_prompt_tokens: int = 0
    ttfts: list[float] = field(default_factory=list)
    latencies: list[float] = field(default_factory=list)
    crashed: bool = False
    error_sample: str = ""

    @property
    def output_throughput(self) -> float:
        """Output tokens/second — the paper's y-axis."""
        return self.total_output_tokens / self.duration \
            if self.duration > 0 else 0.0

    @property
    def request_throughput(self) -> float:
        return self.completed / self.duration if self.duration > 0 else 0.0

    @property
    def mean_ttft(self) -> float:
        return float(np.mean(self.ttfts)) if self.ttfts else 0.0

    @property
    def p50_ttft(self) -> float:
        return float(np.percentile(self.ttfts, 50)) if self.ttfts else 0.0

    @property
    def p99_ttft(self) -> float:
        return float(np.percentile(self.ttfts, 99)) if self.ttfts else 0.0

    @property
    def p50_latency(self) -> float:
        return float(np.percentile(self.latencies, 50)) if self.latencies \
            else 0.0

    @property
    def p99_latency(self) -> float:
        return float(np.percentile(self.latencies, 99)) if self.latencies \
            else 0.0

    def row(self) -> dict:
        """One row of the paper-style report."""
        return {
            "max_concurrency": self.concurrency,
            "completed": self.completed,
            "errors": self.errors,
            "duration_s": round(self.duration, 2),
            "output_tok_per_s": round(self.output_throughput, 1),
            "req_per_s": round(self.request_throughput, 3),
            "mean_ttft_s": round(self.mean_ttft, 3),
            "p50_ttft_s": round(self.p50_ttft, 3),
            "p99_ttft_s": round(self.p99_ttft, 3),
            "p50_latency_s": round(self.p50_latency, 3),
            "p99_latency_s": round(self.p99_latency, 3),
            "crashed": self.crashed,
        }

    def summary(self) -> str:
        """Human-readable one-run digest (vLLM benchmark-style footer)."""
        return (
            f"concurrency={self.concurrency}: "
            f"{self.completed}/{self.n_requests} ok, "
            f"{self.errors} errors, "
            f"{self.output_throughput:.1f} tok/s, "
            f"{self.request_throughput:.3f} req/s, "
            f"ttft p50/p99 {self.p50_ttft:.3f}/{self.p99_ttft:.3f} s, "
            f"latency p50/p99 {self.p50_latency:.2f}/{self.p99_latency:.2f} s"
            + (" [CRASHED]" if self.crashed else ""))


class BenchmarkClient:
    """Drives one benchmark run from a client host on the fabric."""

    def __init__(self, kernel: SimKernel, fabric: Fabric,
                 client_host: str, endpoint_host: str, endpoint_port: int,
                 model: str, api_path: str = "/v1/chat/completions"):
        self.kernel = kernel
        self.fabric = fabric
        self.client_host = client_host
        self.endpoint = (endpoint_host, endpoint_port)
        self.model = model
        self.api_path = api_path

    def run(self, requests: list[SampledRequest], max_concurrency: int):
        """Generator: returns a :class:`BenchmarkResult`."""
        kernel = self.kernel
        result = BenchmarkResult(concurrency=max_concurrency,
                                 n_requests=len(requests))
        queue = list(reversed(requests))  # pop() takes in order
        started_at = kernel.now
        abort_after = max(1, int(len(requests) * ERROR_ABORT_FRACTION))
        http = HttpClient(self.fabric, self.client_host)

        def worker(env):
            while queue:
                if result.errors >= abort_after:
                    return
                sample = queue.pop()
                submit_time = env.now
                try:
                    response = yield from http.post(
                        self.endpoint[0], self.endpoint[1], self.api_path,
                        json={
                            "model": self.model,
                            "messages": [{"role": "user",
                                          "content": "<sampled>"}],
                            "repro_prompt_tokens": sample.prompt_tokens,
                            "max_tokens": sample.output_tokens,
                            "temperature": 0.7,
                        })
                except (APIError, NetworkUnreachable, ReproError) as exc:
                    result.errors += 1
                    result.error_sample = result.error_sample or str(exc)
                    continue
                if not response.ok:
                    result.errors += 1
                    result.error_sample = result.error_sample or str(
                        (response.status, response.json))
                    continue
                usage = response.json["usage"]
                stats = response.json.get("repro_stats", {})
                result.completed += 1
                result.total_output_tokens += usage["completion_tokens"]
                result.total_prompt_tokens += usage["prompt_tokens"]
                result.ttfts.append(stats.get("ttft", 0.0))
                result.latencies.append(env.now - submit_time)

        workers = [kernel.spawn(worker(kernel), name=f"bench-w{i}")
                   for i in range(max_concurrency)]
        yield kernel.all_of(workers)
        result.duration = kernel.now - started_at
        result.crashed = result.errors >= abort_after
        kernel.trace.emit("bench.done", concurrency=max_concurrency,
                          completed=result.completed, errors=result.errors,
                          throughput=result.output_throughput)
        return result
