"""Grid expansion and the parallel campaign runner.

A :class:`CampaignGrid` is a base :class:`ScenarioSpec` plus sweep axes
(dotted field paths mapped to value lists) and optional explicit cells.
``expand()`` takes the cartesian product, so ``2 platforms x 2 schedules
x 2 chaos modes x 3 seeds`` is four lines of config, not 24 scripts.

The :class:`CampaignRunner` fans expanded cells out across a
``multiprocessing`` pool — every cell builds its *own*
:class:`~repro.simkernel.SimKernel` from its spec, so cells are
embarrassingly parallel — then merges per-cell scorecards into one
deterministic ``campaign_scorecard.json``: rows sorted by cell name,
aggregates computed from the sorted rows, and nothing about pool size or
wall-clock in the payload.  ``--workers 1`` and ``--workers 16`` are
byte-identical.
"""

from __future__ import annotations

import dataclasses
import itertools
import multiprocessing
import pathlib
from dataclasses import dataclass, field
from typing import Any

from ..errors import ConfigurationError
from ..experiments.common import canonical_json_text
from ..fleet.autoscaler import AutoscalerConfig
from ..fleet.slo import SloSpec
from .spec import (ChaosEventSpec, ScenarioSpec, ScheduleSpec, SiteSpec,
                   _load_text, set_path)

#: Scorecard schema tag; bump on any breaking layout change.
SCHEMA = "campaign_scorecard/v1"


# -- grids ----------------------------------------------------------------------

def _render(value: Any) -> str:
    """A short, stable label for one axis value."""
    if isinstance(value, ChaosEventSpec):
        return value.scenario
    if isinstance(value, dict) and "scenario" in value:
        return str(value["scenario"])
    if isinstance(value, (tuple, list)):
        return "+".join(_render(v) for v in value) or "none"
    if value is None or value == "none":
        return "none"
    if isinstance(value, float) and value == int(value):
        return str(int(value))
    return str(value)


@dataclass
class CampaignGrid:
    """A base spec, sweep axes, and explicit extra cells."""

    base: ScenarioSpec
    axes: dict[str, list] = field(default_factory=dict)
    cells: list[dict] = field(default_factory=list)
    name: str = "campaign"

    @classmethod
    def from_dict(cls, data: dict) -> CampaignGrid:
        known = {"name", "base", "axes", "cells"}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown campaign keys: {sorted(unknown)} "
                f"(known: {sorted(known)})")
        base = ScenarioSpec.from_dict(data.get("base", {}))
        axes = {str(k): list(v) for k, v in (data.get("axes") or {}).items()}
        cells = list(data.get("cells") or [])
        return cls(base=base, axes=axes, cells=cells,
                   name=str(data.get("name", "campaign")))

    @classmethod
    def from_file(cls, path: str | pathlib.Path) -> CampaignGrid:
        return cls.from_dict(_load_text(pathlib.Path(path)))

    def expand(self) -> list[tuple[ScenarioSpec, dict[str, str]]]:
        """Every cell of the cartesian grid plus the explicit cells.

        Returns ``(spec, axes_map)`` pairs; ``axes_map`` records the
        rendered axis assignment so the scorecard can aggregate per
        axis.  Cell names must be unique — duplicate cells would merge
        silently in the scorecard.
        """
        axis_items = sorted(self.axes.items())
        for path, values in axis_items:
            if not values:
                raise ConfigurationError(f"axis {path!r} has no values")
        out: list[tuple[ScenarioSpec, dict[str, str]]] = []
        if axis_items or not self.cells:
            # No axes and no explicit cells -> the base itself is the
            # single cell; explicit-cells-only grids skip the bare base.
            for combo in itertools.product(*(v for _, v in axis_items)):
                spec = self.base
                axes_map: dict[str, str] = {}
                parts = [self.base.name]
                for (path, _), value in zip(axis_items, combo, strict=True):
                    spec = set_path(spec, path, value)
                    axes_map[path] = _render(value)
                    parts.append(
                        f"{path.rsplit('.', 1)[-1]}={axes_map[path]}")
                spec = dataclasses.replace(spec, name="/".join(parts))
                out.append((spec, axes_map))
        for overrides in self.cells:
            overrides = dict(overrides)
            if "name" not in overrides:
                raise ConfigurationError("explicit cells need a 'name'")
            spec = self.base
            for key, value in overrides.items():
                spec = set_path(spec, key, value)
            out.append((spec, {}))
        names = [spec.name for spec, _ in out]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ConfigurationError(f"duplicate cell names: {dupes}")
        return out


# -- one cell -------------------------------------------------------------------

def run_cell(spec: ScenarioSpec, observability: bool = True) -> dict:
    """Simulate one cell start to finish; returns its scorecard row.

    Builds a fresh site and fleet from the spec, plays the schedule
    (through the chaos orchestrator when the spec lists injections), and
    reduces the :class:`FleetReport` to a JSON-safe row including the
    kernel's trace digest — the strongest cheap witness that two
    processes computed the same simulation.

    ``observability=False`` runs the identical cell fully dark (no
    registry, spans, or scraper; the row's ``obs`` block is None) — the
    baseline arm of the overhead bench and of instrumentation-cost
    ablations.
    """
    from ..chaos.orchestrator import ChaosOrchestrator
    from ..chaos.scenarios import catalog
    from ..chaos.supervisor import SupervisorConfig

    site = spec.build_site()
    kernel = site.kernel
    if not observability:
        kernel.obs.disable()
    fleet = spec.build_fleet(site)
    if not observability:
        fleet.config = dataclasses.replace(
            fleet.config, obs_spans=False, scrape_interval=0.0)
    schedule = spec.schedule.build()
    mix = spec.build_mix(kernel)
    by_name = {s.name: s for s in catalog()}

    sessions = spec.sessions if spec.sessions.enabled else None

    def cell(env):
        yield from fleet.start(initial_replicas=spec.initial_replicas)
        if not spec.chaos:
            report = yield from fleet.run_scenario(
                schedule, spec.horizon, mix=mix, label=spec.name,
                sessions=sessions)
            return report
        orchestrator = ChaosOrchestrator(
            fleet,
            supervisor=SupervisorConfig(interval=spec.supervisor_interval),
            probe_interval=spec.probe_interval)
        if len(spec.chaos) == 1:
            event = spec.chaos[0]
            report, _res = yield from orchestrator.run_case(
                by_name[event.scenario], schedule, spec.horizon,
                event.inject_at, fault_duration=event.fault_duration,
                mix=mix, sessions=sessions)
            return report
        plan = [(e.inject_at, by_name[e.scenario], e.fault_duration)
                for e in spec.chaos]
        report, segments = yield from orchestrator.run_gameday(
            plan, schedule, spec.horizon, mix=mix, sessions=sessions)
        # Lift whole-cell verdicts out of the per-segment reports so
        # scorecard aggregates (recovered counts, MTTR curves) treat
        # gameday cells like single-fault cells: recovered means every
        # fault recovered, MTTR is the worst fault's.
        mttrs = [s["mttr_s"] for s in segments]
        report.resilience["recovery_ok"] = all(
            s["recovered_at_s"] is not None and s.get("error") is None
            for s in segments)
        report.resilience["mttr_s"] = (max(mttrs)
                                       if segments and None not in mttrs
                                       else None)
        return report

    report = kernel.run(until=kernel.spawn(cell(kernel), name=spec.name))
    digest = kernel.trace.digest()
    fleet.shutdown()
    slo = report.slo
    row = {
        "cell": spec.name,
        "spec_hash": spec.spec_hash(),
        "seed": spec.seed,
        "platforms": list(spec.platforms),
        "schedule": spec.schedule.kind,
        "chaos": [e.scenario for e in spec.chaos],
        "arrivals": report.arrivals,
        "scheduler_policy": spec.scheduler_policy,
        "disagg": spec.disagg.enabled,
        "completed": slo.completed,
        "errors": slo.errors,
        "attainment": round(slo.attainment, 4),
        "goodput_rps": round(slo.goodput_rps, 3),
        "peak_replicas": report.peak_replicas,
        "final_replicas": report.final_replicas,
        "scale_events": len(report.scale_events),
        "replica_seconds": round(report.replica_seconds, 1),
        "resilience": report.resilience,
        "trace_digest": digest,
        # Span/metrics/scrape digests: like trace_digest, these must be
        # byte-identical whatever the worker count (trace ids are
        # per-kernel counters, never process-global request ids).
        "obs": report.obs,
    }
    if report.sessions is not None:
        # Session cells carry the conversational scorecard: workload
        # accounting plus the per-turn TTFT split and prefix-cache
        # effectiveness the sweep axes (turns x think x cache) act on.
        row["sessions"] = report.sessions
        row["turn_ttft"] = slo.turns
        row["cache"] = slo.cache
    if slo.paths is not None:
        # Disagg cells carry the per-serving-path TTFT split and the
        # KV-handoff transfer cost the unified-vs-disagg axis acts on.
        row["paths"] = slo.paths
    return row


def _run_cell_payload(payload: dict) -> dict:
    """Pool worker entry: rebuild the spec, run the cell, tag the row.

    A cell that dies becomes an ``error`` row rather than killing a
    hundred-cell campaign; the scorecard counts failures explicitly.
    """
    spec = ScenarioSpec.from_dict(payload["spec"])
    try:
        row = run_cell(spec)
    except Exception as exc:  # noqa: BLE001 - scorecard the failure
        row = {"cell": spec.name, "spec_hash": spec.spec_hash(),
               "seed": spec.seed, "error": f"{type(exc).__name__}: {exc}"}
    row["axes"] = payload["axes"]
    return row


# -- the campaign ---------------------------------------------------------------

class CampaignRunner:
    """Expand a grid, fan cells out over workers, merge one scorecard."""

    def __init__(self, grid: CampaignGrid, workers: int = 1):
        if workers < 1:
            raise ConfigurationError("workers must be >= 1")
        self.grid = grid
        self.workers = workers

    def run(self, on_cell=None) -> dict:
        expanded = self.grid.expand()
        payloads = [{"spec": spec.to_dict(), "axes": axes}
                    for spec, axes in expanded]
        if self.workers == 1:
            rows = []
            for payload in payloads:
                row = _run_cell_payload(payload)
                rows.append(row)
                if on_cell is not None:
                    on_cell(row)
        else:
            methods = multiprocessing.get_all_start_methods()
            ctx = multiprocessing.get_context(
                "fork" if "fork" in methods else "spawn")
            workers = min(self.workers, len(payloads)) or 1
            with ctx.Pool(processes=workers) as pool:
                rows = []
                for row in pool.imap_unordered(_run_cell_payload, payloads):
                    rows.append(row)
                    if on_cell is not None:
                        on_cell(row)
        rows.sort(key=lambda r: r["cell"])
        return self._scorecard(rows)

    def _scorecard(self, rows: list[dict]) -> dict:
        ok = [r for r in rows if "error" not in r]
        chaos_rows = [r for r in ok if r["chaos"]]
        mttrs = [r["resilience"]["mttr_s"] for r in chaos_rows
                 if isinstance(r.get("resilience"), dict)
                 and r["resilience"].get("mttr_s") is not None]
        return {
            "schema": SCHEMA,
            "campaign": self.grid.name,
            "base": self.grid.base.to_dict(),
            "axes": {path: [_render(v) for v in values]
                     for path, values in sorted(self.grid.axes.items())},
            "cells": rows,
            "aggregates": {
                path: _axis_aggregate(path, ok)
                for path in sorted(self.grid.axes)},
            "summary": {
                "cells": len(rows),
                "failed": len(rows) - len(ok),
                "arrivals_total": sum(r["arrivals"] for r in ok),
                "errors_total": sum(r["errors"] for r in ok),
                "attainment_mean": _mean([r["attainment"] for r in ok], 4),
                "replica_seconds_total": round(
                    sum(r["replica_seconds"] for r in ok), 1),
                "chaos_cells": len(chaos_rows),
                "recovered": sum(
                    1 for r in chaos_rows
                    if isinstance(r.get("resilience"), dict)
                    and r["resilience"].get("recovery_ok")),
                "mttr_mean_s": _mean(mttrs, 1),
            },
        }


def _mean(values: list[float], digits: int) -> float | None:
    return round(sum(values) / len(values), digits) if values else None


def _axis_aggregate(path: str, rows: list[dict]) -> dict:
    """Per-value stats along one axis: the sweep's marginal curves.

    Reading ``attainment_mean`` along a load axis gives SLO attainment
    vs load; ``mttr_mean_s`` along the chaos axis gives MTTR by fault
    type; ``replica_seconds_mean`` across chaos values is the
    cost-of-resilience curve.
    """
    groups: dict[str, list[dict]] = {}
    for row in rows:
        value = row.get("axes", {}).get(path)
        if value is not None:
            groups.setdefault(value, []).append(row)
    out = {}
    for value in sorted(groups):
        cells = groups[value]
        mttrs = [c["resilience"]["mttr_s"] for c in cells
                 if isinstance(c.get("resilience"), dict)
                 and c["resilience"].get("mttr_s") is not None]
        out[value] = {
            "cells": len(cells),
            "arrivals": sum(c["arrivals"] for c in cells),
            "errors": sum(c["errors"] for c in cells),
            "attainment_mean": _mean([c["attainment"] for c in cells], 4),
            "goodput_rps_mean": _mean([c["goodput_rps"] for c in cells], 3),
            "replica_seconds_mean": _mean(
                [c["replica_seconds"] for c in cells], 1),
            "mttr_mean_s": _mean(mttrs, 1),
        }
        # Session marginals (only for grids that ran session cells):
        # later-turn TTFT vs the axis is the cache-effectiveness curve.
        later = [c["turn_ttft"]["later"]["mean_s"] for c in cells
                 if isinstance(c.get("turn_ttft"), dict)
                 and c["turn_ttft"].get("later", {}).get("n")]
        hit_rates = [c["cache"]["hit_rate"] for c in cells
                     if isinstance(c.get("cache"), dict)]
        if later or hit_rates:
            out[value]["ttft_later_mean_s"] = _mean(later, 4)
            out[value]["cache_hit_rate_mean"] = _mean(hit_rates, 4)
    return out


def scorecard_text(scorecard: dict) -> str:
    """Canonical serialization: byte-identical for identical campaigns."""
    return canonical_json_text(scorecard)


# -- built-in grids -------------------------------------------------------------

def demo_grid(seed: int = 42) -> CampaignGrid:
    """The default 24-cell demo: 2 platforms x 2 schedules x 2 chaos
    modes x 3 seeds, half an hour of simulated traffic per cell.

    Arrival rates are sized for the streaming hot path (~2 req/s per
    cell, an order of magnitude above the original demo): ~85k requests
    across the grid, which the coalesced engine and O(1) metrics path
    simulate in seconds per cell (see ``benchmarks/bench_hotpath.py``).
    """
    base = ScenarioSpec(
        name="demo", seed=seed, horizon=1800.0, initial_replicas=2,
        site=SiteSpec(hops_nodes=6, eldorado_nodes=2, goodall_nodes=4,
                      cee_nodes=1),
        schedule=ScheduleSpec(kind="poisson", rate_rps=2.0, base_rps=0.5,
                              peak_rps=3.0, period=3600.0, peak_hour=0.25),
        slo=SloSpec(ttft_target=10.0, e2e_target=120.0),
        autoscaler=AutoscalerConfig(min_replicas=2, max_replicas=3))
    return CampaignGrid(
        base=base, name="demo-24",
        axes={
            "platforms": ["hops", "goodall"],
            "schedule.kind": ["poisson", "diurnal"],
            "chaos": ["none", "node_crash"],
            "seed": [seed, seed + 1, seed + 2],
        })


def sessions_grid(seed: int = 42) -> CampaignGrid:
    """The built-in conversational sweep: turns x think-time x cache.

    9 cells of multi-turn traffic (30 simulated minutes each) under
    the cache-affinity router: conversation length {3, 6} x think time
    {10 s, 45 s} x prefix cache {on, off}, plus an explicit
    small-KV-budget cell.  The
    ``sessions.prefix_caching`` margin is the headline (later-turn TTFT
    with and without block reuse); the ``gpu_memory_utilization`` cell
    shows eviction pressure eating the hit rate.
    """
    from ..sessions import SessionSpec
    base = ScenarioSpec(
        name="sessions", seed=seed, horizon=1800.0, initial_replicas=2,
        policy="cache-affinity",
        site=SiteSpec(hops_nodes=6, eldorado_nodes=2, goodall_nodes=4,
                      cee_nodes=1),
        schedule=ScheduleSpec(kind="poisson", rate_rps=0.25),
        slo=SloSpec(ttft_target=10.0, e2e_target=120.0),
        autoscaler=AutoscalerConfig(min_replicas=2, max_replicas=3),
        sessions=SessionSpec(enabled=True, mean_turns=5, min_turns=2,
                             think_mean_s=20.0))
    return CampaignGrid(
        base=base, name="sessions-9",
        axes={
            "sessions.mean_turns": [3.0, 6.0],
            "sessions.think_mean_s": [10.0, 45.0],
            "sessions.prefix_caching": [True, False],
        },
        cells=[
            # ~4.5x less KV than the 0.90 default on H100: eviction
            # pressure visibly dents the hit rate without starving
            # max_model_len.
            {"name": "sessions/small-kv",
             "gpu_memory_utilization": 0.50},
        ])


def disagg_grid(seed: int = 42) -> CampaignGrid:
    """The serving-architecture sweep: unified vs disaggregated.

    8 cells (30 simulated minutes each): serving path {unified,
    disagg} x arrival rate {moderate, heavy} x seed pair.  The
    ``disagg`` margin is the headline — TTFT on the disagg path should
    hold as decode load grows (prefill never queues behind decode
    batches), priced against the KV-transfer seconds the handoffs
    cost.  Disagg cells start one prefill + two decode replicas against
    unified's two, so both arms field three engines at peak.
    """
    base = ScenarioSpec(
        name="disagg", seed=seed, horizon=1800.0, initial_replicas=2,
        policy="round-robin",
        site=SiteSpec(hops_nodes=8, eldorado_nodes=2, goodall_nodes=4,
                      cee_nodes=1),
        schedule=ScheduleSpec(kind="poisson", rate_rps=1.0),
        slo=SloSpec(ttft_target=10.0, e2e_target=120.0),
        autoscaler=AutoscalerConfig(min_replicas=2, max_replicas=3))
    return CampaignGrid(
        base=base, name="disagg-8",
        axes={
            "disagg": [False, True],
            "schedule.rate_rps": [1.0, 2.0],
            "seed": [seed, seed + 1],
        })


def smoke_grid(seed: int = 42) -> CampaignGrid:
    """A 4-cell, 15-simulated-minute grid: the CI regression gate for
    the runner itself (expansion, pool fan-out, merge, determinism)."""
    grid = demo_grid(seed)
    grid.name = "smoke-4"
    grid.base = dataclasses.replace(grid.base, name="smoke", horizon=900.0)
    grid.axes = {
        "platforms": ["hops", "goodall"],
        "chaos": ["none", {"scenario": "node_crash", "inject_at": 300.0,
                           "fault_duration": 200.0}],
        "seed": [seed],
    }
    return grid
