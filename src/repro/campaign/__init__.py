"""Campaign subsystem: declarative scenario specs + a parallel sweep runner.

PR 1 (fleet) and PR 2 (chaos) each run one scenario per process.  This
package turns those bespoke runners into a scenario *engine*: a
:class:`ScenarioSpec` declares everything one cell needs (topology,
platforms, traffic, autoscaling, chaos, horizon, seed) as a single
validated, hashable value; a :class:`CampaignGrid` sweeps spec fields
over cartesian axes; and the :class:`CampaignRunner` fans the cells out
across a process pool and merges per-cell scorecards into one
deterministic ``campaign_scorecard.json`` — byte-identical regardless of
worker count.
"""

from .runner import (SCHEMA, CampaignGrid, CampaignRunner, demo_grid,
                     disagg_grid, run_cell, scorecard_text, sessions_grid,
                     smoke_grid)
from .spec import (ChaosEventSpec, ScenarioSpec, ScheduleSpec, SiteSpec,
                   TenantSpec, coerce_chaos, get_path, set_path)

__all__ = [
    "SCHEMA",
    "CampaignGrid",
    "CampaignRunner",
    "ChaosEventSpec",
    "ScenarioSpec",
    "ScheduleSpec",
    "SiteSpec",
    "TenantSpec",
    "coerce_chaos",
    "demo_grid",
    "disagg_grid",
    "get_path",
    "run_cell",
    "scorecard_text",
    "sessions_grid",
    "set_path",
    "smoke_grid",
]
