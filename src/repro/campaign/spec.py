"""Declarative scenario specs: one validated, hashable value per cell.

A :class:`ScenarioSpec` composes everything the stack can already do —
site topology, replica platforms, traffic schedule (Poisson / diurnal /
flash-crowd overlay + tenant mix), autoscaler policy, a list of chaos
injections, horizon, and seed — into a single frozen dataclass.  The
spec is the *only* input a campaign cell needs: ``build_site()`` /
``build_fleet()`` / ``schedule.build()`` turn it into live objects, and
``spec_hash()`` canonically fingerprints it, so two processes holding
equal specs provably simulate the same cell.

Specs round-trip through plain dicts (``to_dict`` / ``from_dict``) and
through YAML or JSON files (``to_file`` / ``from_file``); unknown keys
are rejected rather than silently dropped.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import pathlib
from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING, Any, TypeVar

from ..errors import ConfigurationError
from ..fleet.autoscaler import AutoscalerConfig
from ..fleet.fleet import DisaggSpec
from ..fleet.slo import SloSpec
from ..fleet.traffic import (DAY, ArrivalSchedule, DiurnalSchedule,
                             FlashCrowdSchedule, PoissonSchedule,
                             PulseSchedule, Tenant, TenantMix)
from ..sessions.spec import SessionSpec

if TYPE_CHECKING:  # pragma: no cover
    from ..core.site import ConvergedSite
    from ..fleet.fleet import Fleet
    from ..simkernel import SimKernel

_T = TypeVar("_T")

#: The paper's quantized Scout checkpoint, the default serving target.
DEFAULT_MODEL = "RedHatAI/Llama-4-Scout-17B-16E-Instruct-quantized.w4a16"


@dataclass(frozen=True)
class SiteSpec:
    """Node counts per converged-site platform (paper Fig. 1 topology)."""

    hops_nodes: int = 6
    eldorado_nodes: int = 2
    goodall_nodes: int = 4
    cee_nodes: int = 1

    def __post_init__(self) -> None:
        for f in fields(self):
            if getattr(self, f.name) < 0:
                raise ConfigurationError(f"{f.name} must be >= 0")


@dataclass(frozen=True)
class ScheduleSpec:
    """Declarative arrival schedule; ``build()`` yields the live object.

    ``kind`` selects the base process (``poisson``, ``diurnal``, or
    ``pulse`` — on/off bursts of ``rate_rps`` for ``duty`` of each
    ``period``); a ``flash_mult > 1`` wraps it in a
    :class:`FlashCrowdSchedule` overlay, mirroring how the live schedule
    classes compose.
    """

    kind: str = "poisson"
    rate_rps: float = 0.15          # poisson / pulse burst rate
    base_rps: float = 0.05          # diurnal floor
    peak_rps: float = 0.25          # diurnal ceiling
    period: float = DAY
    peak_hour: float = 14.0
    duty: float = 0.0125            # pulse: active fraction of the period
    flash_mult: float = 1.0         # > 1 enables the burst overlay
    flash_start: float = 0.0
    flash_duration: float = 1800.0
    flash_ramp: float = 120.0

    KINDS = ("poisson", "diurnal", "pulse")

    def __post_init__(self) -> None:
        if self.kind not in self.KINDS:
            raise ConfigurationError(
                f"schedule kind must be one of {list(self.KINDS)}: "
                f"{self.kind!r}")
        if not (0.0 < self.duty <= 1.0):
            raise ConfigurationError("duty must be in (0, 1]")
        if self.flash_mult < 1.0:
            raise ConfigurationError("flash_mult must be >= 1")

    def build(self) -> ArrivalSchedule:
        if self.kind == "poisson":
            schedule: ArrivalSchedule = PoissonSchedule(self.rate_rps)
        elif self.kind == "pulse":
            schedule = PulseSchedule(rate_rps=self.rate_rps,
                                     period=self.period, duty=self.duty)
        else:
            schedule = DiurnalSchedule(
                base_rps=self.base_rps, peak_rps=self.peak_rps,
                period=self.period, peak_hour=self.peak_hour)
        if self.flash_mult > 1.0:
            schedule = FlashCrowdSchedule(
                schedule, start=self.flash_start,
                duration=self.flash_duration,
                multiplier=self.flash_mult, ramp=self.flash_ramp)
        return schedule


@dataclass(frozen=True)
class TenantSpec:
    """One traffic class of the tenant mix (``repro.fleet.traffic``)."""

    name: str
    weight: float = 1.0
    max_total_tokens: int = 0       # 0 = the sampler default

    def to_tenant(self) -> Tenant:
        kw = ({"max_total_tokens": self.max_total_tokens}
              if self.max_total_tokens else {})
        return Tenant(self.name, self.weight, kw)


@dataclass(frozen=True)
class ChaosEventSpec:
    """One scheduled fault: a catalog scenario name plus its timing."""

    scenario: str
    inject_at: float = 600.0        # seconds after traffic start
    fault_duration: float = 300.0

    def __post_init__(self) -> None:
        if self.inject_at < 0:
            raise ConfigurationError("inject_at must be >= 0")
        if self.fault_duration <= 0:
            raise ConfigurationError("fault_duration must be positive")


def _known_chaos_names() -> set[str]:
    # Deferred: repro.chaos.runner imports this module, so a module-level
    # import of the catalog would be circular.
    from ..chaos.scenarios import CATALOG
    return {s.name for s in CATALOG}


def _make(cls: type[_T], data: dict[str, Any], where: str) -> _T:
    known = {f.name for f in fields(cls)}
    unknown = set(data) - known
    if unknown:
        raise ConfigurationError(
            f"unknown {where} keys: {sorted(unknown)} "
            f"(known: {sorted(known)})")
    return cls(**data)


@dataclass(frozen=True)
class ScenarioSpec:
    """Everything one campaign cell needs, as a frozen, hashable value."""

    name: str = "scenario"
    seed: int = 42
    model: str = DEFAULT_MODEL
    tensor_parallel_size: int = 2
    platforms: tuple[str, ...] = ("hops",)
    router_platform: str = "hops"
    policy: str = "least-outstanding"
    initial_replicas: int = 1
    horizon: float = 3600.0
    site: SiteSpec = field(default_factory=SiteSpec)
    schedule: ScheduleSpec = field(default_factory=ScheduleSpec)
    tenants: tuple[TenantSpec, ...] = ()
    slo: SloSpec = field(default_factory=SloSpec)
    autoscaler: AutoscalerConfig = field(default_factory=AutoscalerConfig)
    chaos: tuple[ChaosEventSpec, ...] = ()
    probe_interval: float = 15.0
    supervisor_interval: float = 30.0
    #: simulated seconds between metrics scrapes — also the alert
    #: evaluation cadence (0 disables scraping *and* alerting).  Chaos
    #: matrix cells tighten this so telemetry-driven detection delay is
    #: resolved finer than the fault duration.
    scrape_interval: float = 300.0
    #: Multi-turn conversational workload; when ``sessions.enabled`` the
    #: schedule emits session *starts* and replicas serve with prefix
    #: caching per ``sessions.prefix_caching``.
    sessions: SessionSpec = field(default_factory=SessionSpec)
    #: vLLM's KV-memory knob — the campaign-sweepable "cache size" axis.
    gpu_memory_utilization: float = 0.90
    #: engine scheduler policy every replica runs with (``fcfs``,
    #: ``priority``, or ``chunked``) — the admission-policy sweep axis.
    scheduler_policy: str = "fcfs"
    #: disaggregated prefill/decode serving (the serving-architecture
    #: axis: unified vs split pools).
    disagg: DisaggSpec = field(default_factory=DisaggSpec)
    #: fleet fast-forward: bulk time-jumps over provably event-free
    #: intervals.  Bit-identical to stepping by construction and
    #: auto-disabled under chaos/faults/disagg, so the only reason to
    #: flip it off is an A/B arm in an equivalence or perf study.
    fast_forward: bool = True

    def __post_init__(self) -> None:
        # Forgiving construction: the ergonomic spellings accepted by
        # from_dict / grid axes also work on the constructor directly.
        if isinstance(self.platforms, str):
            object.__setattr__(self, "platforms", (self.platforms,))
        elif not isinstance(self.platforms, tuple):
            object.__setattr__(self, "platforms", tuple(self.platforms))
        object.__setattr__(self, "chaos", coerce_chaos(self.chaos))
        if not isinstance(self.tenants, tuple):
            object.__setattr__(self, "tenants", tuple(self.tenants))
        if isinstance(self.sessions, dict):
            object.__setattr__(self, "sessions",
                               _make(SessionSpec, self.sessions, "sessions"))
        if isinstance(self.disagg, bool):
            object.__setattr__(self, "disagg", DisaggSpec(enabled=self.disagg))
        elif isinstance(self.disagg, dict):
            object.__setattr__(self, "disagg",
                               _make(DisaggSpec, self.disagg, "disagg"))
        if self.scheduler_policy not in ("fcfs", "priority", "chunked"):
            raise ConfigurationError(
                f"unknown scheduler_policy {self.scheduler_policy!r} "
                "(choices: fcfs, priority, chunked)")
        if not (0.1 <= self.gpu_memory_utilization <= 1.0):
            raise ConfigurationError(
                f"gpu_memory_utilization {self.gpu_memory_utilization} "
                "out of range (0.1..1.0)")
        if not self.name:
            raise ConfigurationError("spec needs a non-empty name")
        if not self.platforms:
            raise ConfigurationError("spec needs at least one platform")
        if self.horizon <= 0:
            raise ConfigurationError("horizon must be positive")
        if self.initial_replicas < 1:
            raise ConfigurationError("initial_replicas must be >= 1")
        if self.tensor_parallel_size < 1:
            raise ConfigurationError("tensor_parallel_size must be >= 1")
        if self.probe_interval <= 0 or self.supervisor_interval <= 0:
            raise ConfigurationError(
                "probe_interval and supervisor_interval must be positive")
        if self.scrape_interval < 0:
            raise ConfigurationError("scrape_interval must be >= 0")
        names = [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate tenant names: {names}")
        known = _known_chaos_names()
        for event in self.chaos:
            if event.scenario not in known:
                raise ConfigurationError(
                    f"unknown chaos scenario {event.scenario!r} "
                    f"(catalog: {sorted(known)})")
            if event.inject_at >= self.horizon:
                raise ConfigurationError(
                    f"chaos {event.scenario!r} injects at "
                    f"{event.inject_at}s, past the {self.horizon}s horizon")

    # -- serialization ----------------------------------------------------------

    def to_dict(self) -> dict:
        out = dataclasses.asdict(self)
        out["platforms"] = list(self.platforms)
        out["tenants"] = [dataclasses.asdict(t) for t in self.tenants]
        out["chaos"] = [dataclasses.asdict(e) for e in self.chaos]
        return out

    @classmethod
    def from_dict(cls, data: dict) -> ScenarioSpec:
        data = dict(data)
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown spec keys: {sorted(unknown)} "
                f"(known: {sorted(known)})")
        if "platforms" in data:
            value = data["platforms"]
            data["platforms"] = ((value,) if isinstance(value, str)
                                 else tuple(value))
        if isinstance(data.get("site"), dict):
            data["site"] = _make(SiteSpec, data["site"], "site")
        if isinstance(data.get("schedule"), dict):
            data["schedule"] = _make(ScheduleSpec, data["schedule"],
                                     "schedule")
        if isinstance(data.get("slo"), dict):
            data["slo"] = _make(SloSpec, data["slo"], "slo")
        if isinstance(data.get("autoscaler"), dict):
            data["autoscaler"] = _make(AutoscalerConfig, data["autoscaler"],
                                       "autoscaler")
        if "tenants" in data:
            data["tenants"] = tuple(
                t if isinstance(t, TenantSpec)
                else _make(TenantSpec, t, "tenant")
                for t in data["tenants"])
        if "chaos" in data:
            data["chaos"] = coerce_chaos(data["chaos"])
        if isinstance(data.get("sessions"), dict):
            data["sessions"] = _make(SessionSpec, data["sessions"],
                                     "sessions")
        if isinstance(data.get("disagg"), dict):
            data["disagg"] = _make(DisaggSpec, data["disagg"], "disagg")
        return cls(**data)

    def to_file(self, path: str | pathlib.Path) -> None:
        path = pathlib.Path(path)
        path.write_text(_dump_text(self.to_dict(), path))

    @classmethod
    def from_file(cls, path: str | pathlib.Path) -> ScenarioSpec:
        return cls.from_dict(_load_text(pathlib.Path(path)))

    def spec_hash(self) -> str:
        """Canonical fingerprint: equal specs hash equal, everywhere."""
        text = json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))
        return hashlib.sha256(text.encode()).hexdigest()[:12]

    # -- builders ---------------------------------------------------------------

    def build_site(self) -> ConvergedSite:
        from ..core.site import build_sandia_site
        return build_sandia_site(
            seed=self.seed, hops_nodes=self.site.hops_nodes,
            eldorado_nodes=self.site.eldorado_nodes,
            goodall_nodes=self.site.goodall_nodes,
            cee_nodes=self.site.cee_nodes)

    def build_fleet(self, site: ConvergedSite) -> Fleet:
        from ..fleet.fleet import Fleet, FleetConfig
        # Non-default engine knobs only: the rendered `vllm serve`
        # command (and so every deployment artifact) stays byte-stable
        # for specs that do not touch them.
        engine_params: dict = {}
        if self.sessions.enabled and self.sessions.prefix_caching:
            engine_params["enable_prefix_caching"] = True
        if self.gpu_memory_utilization != 0.90:
            engine_params["gpu_memory_utilization"] = \
                self.gpu_memory_utilization
        if self.scheduler_policy != "fcfs":
            engine_params["scheduler_policy"] = self.scheduler_policy
        config = FleetConfig(
            model=self.model,
            tensor_parallel_size=self.tensor_parallel_size,
            platforms=self.platforms,
            router_platform=self.router_platform,
            policy=self.policy,
            slo=self.slo,
            autoscaler=self.autoscaler,
            engine_params=engine_params,
            scrape_interval=self.scrape_interval,
            disagg=self.disagg,
            fast_forward=self.fast_forward)
        return Fleet(site, config)

    def build_mix(self, kernel: SimKernel) -> TenantMix | None:
        """The declared tenant mix, or ``None`` for the fleet default."""
        if not self.tenants:
            return None
        return TenantMix(kernel, [t.to_tenant() for t in self.tenants])


def coerce_chaos(value: Any) -> tuple[ChaosEventSpec, ...]:
    """Normalize the many spellings of a chaos list into event specs.

    Accepts ``None`` / ``"none"`` / ``()`` (no faults), a bare scenario
    name, an event dict, a :class:`ChaosEventSpec`, or a list of any of
    those — the currency of grid axes and YAML files alike.
    """
    if value is None or value == () or value == [] or value == "none":
        return ()
    if isinstance(value, (str, dict, ChaosEventSpec)):
        value = [value]
    out = []
    for item in value:
        if isinstance(item, ChaosEventSpec):
            out.append(item)
        elif isinstance(item, str):
            out.append(ChaosEventSpec(scenario=item))
        elif isinstance(item, dict):
            out.append(_make(ChaosEventSpec, item, "chaos event"))
        else:
            raise ConfigurationError(
                f"cannot interpret chaos entry {item!r}")
    return tuple(out)


# -- dotted-path access (grid axes) ---------------------------------------------

def get_path(spec: Any, path: str) -> Any:
    """``get_path(spec, "schedule.kind")`` → the nested field value."""
    obj = spec
    for part in path.split("."):
        if not dataclasses.is_dataclass(obj) or not hasattr(obj, part):
            raise ConfigurationError(
                f"no spec field {path!r} (failed at {part!r})")
        obj = getattr(obj, part)
    return obj


def set_path(spec: Any, path: str, value: Any) -> Any:
    """A copy of ``spec`` with the dotted-path field replaced.

    Field-aware coercions keep grid axes terse: ``platforms`` accepts a
    bare platform name, ``chaos`` accepts anything
    :func:`coerce_chaos` does.
    """
    head, _, rest = path.partition(".")
    if not dataclasses.is_dataclass(spec) or not hasattr(spec, head):
        raise ConfigurationError(
            f"no spec field {path!r} (failed at {head!r})")
    if rest:
        value = set_path(getattr(spec, head), rest, value)
    elif head == "platforms":
        value = (value,) if isinstance(value, str) else tuple(value)
    elif head == "chaos":
        value = coerce_chaos(value)
    elif head == "sessions" and isinstance(value, dict):
        value = _make(SessionSpec, value, "sessions")
    elif head == "disagg":
        if isinstance(value, bool):
            value = DisaggSpec(enabled=value)
        elif isinstance(value, dict):
            value = _make(DisaggSpec, value, "disagg")
    elif head == "tenants" and not isinstance(value, tuple):
        value = tuple(value)
    return dataclasses.replace(spec, **{head: value})


# -- file formats ---------------------------------------------------------------

def _dump_text(payload: dict, path: pathlib.Path) -> str:
    if path.suffix in (".yaml", ".yml"):
        yaml = _yaml(path)
        return yaml.safe_dump(payload, sort_keys=True)
    from ..experiments.common import canonical_json_text
    return canonical_json_text(payload)


def _load_text(path: pathlib.Path) -> dict:
    if not path.exists():
        raise ConfigurationError(f"no spec file at {path}")
    text = path.read_text()
    if path.suffix in (".yaml", ".yml"):
        data = _yaml(path).safe_load(text)
    else:
        data = json.loads(text)
    if not isinstance(data, dict):
        raise ConfigurationError(f"{path} must hold a mapping, "
                                 f"got {type(data).__name__}")
    return data


def _yaml(path: pathlib.Path) -> Any:
    try:
        import yaml
    except ImportError as exc:  # pragma: no cover - env without pyyaml
        raise ConfigurationError(
            f"{path} is YAML but pyyaml is not installed; "
            "use a .json spec instead") from exc
    return yaml
