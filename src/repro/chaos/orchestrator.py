"""The chaos orchestrator: schedule a fault, measure the recovery.

``run_case`` plays one scenario against a live fleet: open-loop traffic
runs for the whole horizon, the fault injects at a scheduled simulated
time on the simkernel event loop, the :class:`ReplicaSupervisor` and the
fleet autoscaler react, and a probe loop samples two booleans the whole
time — *is the infrastructure whole* (every replica serving, router pool
fully healthy, no repair deficit) and *is the SLO window met*.  The
resilience report derives from that probe timeline:

* **MTTR** — injection until the first probe after which both signals
  stay good through the end of the run (0 when the fault never registers,
  e.g. a latency spike the SLO absorbs);
* **requests lost vs retried** — SLO-tracker errors vs router requests
  that succeeded only after a failover;
* **first response** — the first supervisor repair or autoscaler action
  after injection.

Since PR 10 the probe ground truth is scored *next to* the telemetry
path an operator would actually have: when the fleet ran with its alert
evaluator on, ``detection_delay_alert_s`` measures injection to first
firing alert (``None`` = the rule set never noticed), false-positive
firings are counted, and the firing timeline merges with injections,
supervisor repairs, and scale actions into a deterministic
:class:`~repro.obs.incident.IncidentLog` on the report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..errors import StateError
from ..obs.incident import IncidentLog
from .scenarios import ChaosContext, ChaosScenario
from .supervisor import ReplicaSupervisor, SupervisorConfig

if TYPE_CHECKING:  # pragma: no cover
    from ..fleet.fleet import Fleet, FleetReport
    from ..fleet.traffic import ArrivalSchedule, TenantMix
    from ..sessions import SessionSpec


@dataclass
class Probe:
    time: float
    infra_ok: bool
    slo_ok: bool

    @property
    def ok(self) -> bool:
        return self.infra_ok and self.slo_ok


@dataclass
class ResilienceReport:
    """Scorecard of one chaos case."""

    scenario: str
    layer: str
    platform: str
    injected_at: float
    detail: dict = field(default_factory=dict)
    detected_at: float | None = None
    recovered_at: float | None = None
    mttr_s: float | None = None
    first_response_s: float | None = None
    requests_lost: int = 0
    requests_retried: int = 0
    failed_forwards: int = 0
    repair_events: list[dict] = field(default_factory=list)
    recovery_ok: bool = False
    error: str | None = None
    #: telemetry-driven detection: injection to the first *firing*
    #: alert (None = no alert evaluator, or the rules never noticed —
    #: the rule-quality gap the probe ground truth exposes).
    detection_delay_alert_s: float | None = None
    alerts_fired: int = 0
    false_alerts: int = 0
    #: merged alert/injection/repair/scale timeline (IncidentLog JSON).
    incidents: dict | None = None

    def summary(self) -> str:
        state = "RECOVERED" if self.recovery_ok else "NOT RECOVERED"
        mttr = ("n/a" if self.mttr_s is None
                else f"{self.mttr_s:7.1f}s")
        detect = ("not detected" if self.detected_at is None
                  else f"detected +{self.detected_at - self.injected_at:.0f}s")
        alert = ("alert n/a" if self.incidents is None
                 else "alert silent" if self.detection_delay_alert_s is None
                 else f"alert +{self.detection_delay_alert_s:.0f}s")
        return (f"{self.scenario:18s} [{self.layer:9s}] on "
                f"{self.platform:8s}: {state} mttr={mttr} ({detect}, "
                f"{alert}), lost={self.requests_lost} "
                f"retried={self.requests_retried}")

    def to_json(self) -> dict:
        def r(value):
            return None if value is None else round(value, 1)
        return {
            "scenario": self.scenario,
            "layer": self.layer,
            "platform": self.platform,
            "injected_at_s": r(self.injected_at),
            "detail": self.detail,
            "detected_at_s": r(self.detected_at),
            "recovered_at_s": r(self.recovered_at),
            "mttr_s": r(self.mttr_s),
            "first_response_s": r(self.first_response_s),
            "detection_delay_alert_s": r(self.detection_delay_alert_s),
            "alerts_fired": self.alerts_fired,
            "false_alerts": self.false_alerts,
            "requests_lost": self.requests_lost,
            "requests_retried": self.requests_retried,
            "failed_forwards": self.failed_forwards,
            "repair_events": self.repair_events,
            "recovery_ok": self.recovery_ok,
            "error": self.error,
            **({"incidents": self.incidents}
               if self.incidents is not None else {}),
        }


class ChaosOrchestrator:
    """Binds a fleet to the supervisor, a probe loop, and fault plans."""

    def __init__(self, fleet: Fleet,
                 supervisor: SupervisorConfig | None = None,
                 probe_interval: float = 15.0):
        self.fleet = fleet
        self.kernel = fleet.kernel
        # Chaos attaches faults mid-scenario; the fleet's fast-forward
        # lane cannot replay failover, so disarm it for good the moment
        # a fleet is bound to an orchestrator.
        fleet.ff.chaos = True
        self.supervisor = ReplicaSupervisor(fleet, supervisor)
        self.probe_interval = probe_interval
        self.probes: list[Probe] = []
        self._target_replicas = 0

    # -- probes -----------------------------------------------------------------

    def _infra_ok(self) -> bool:
        fleet = self.fleet
        if len(fleet.replicas) < self._target_replicas:
            return False
        if self.supervisor.deficit > 0:
            return False
        if any(fleet.replica_status(r)[0] != "ok" for r in fleet.replicas):
            return False
        stats = fleet.router_app.stats()
        return stats["healthy"] == len(fleet.replicas)

    def _slo_ok(self) -> bool:
        snap = self.fleet.slo.snapshot()
        return snap.slo_met or (snap.completions + snap.errors) == 0

    def _probe_once(self) -> None:
        self.probes.append(Probe(self.kernel.now, self._infra_ok(),
                                 self._slo_ok()))

    def _probe_loop(self, stop_event):
        kernel = self.kernel
        while not stop_event.triggered:
            yield kernel.any_of(
                [stop_event, kernel.timeout(self.probe_interval)])
            if stop_event.triggered:
                return
            self._probe_once()

    # -- injection --------------------------------------------------------------

    def _inject_now(self, scenario: ChaosScenario, platform_name: str,
                    fault_duration: float) -> dict:
        """Fire one injector at the current simulated time.

        Returns the injection record: the detail dict plus pre-injection
        snapshots of the loss/retry counters, so scorecards attribute
        only post-fault traffic to the fault.
        """
        fleet = self.fleet
        stats = fleet.router_app.stats()
        record = {
            "scenario": scenario.name,
            "layer": scenario.layer,
            "injected_at": self.kernel.now,
            "failed_forwards_before": stats["failed_forwards"],
            "retried_before": stats["retried_ok"],
            "errors_before": fleet.slo.errors,
        }
        ctx = ChaosContext(
            site=fleet.site, fleet=fleet, platform_name=platform_name,
            fault_duration=fault_duration,
            rng=self.kernel.rng.stream(f"chaos.{scenario.name}"))
        try:
            record["detail"] = scenario.inject(ctx)
        except Exception as exc:  # scorecard the failure, don't hang
            record["error"] = f"{type(exc).__name__}: {exc}"
            record["detail"] = {}
        self.kernel.trace.emit(
            "chaos.inject", scenario=scenario.name,
            **{k: v for k, v in record["detail"].items()
               if isinstance(v, (str, int, float))})
        return record

    # -- one scenario -----------------------------------------------------------

    def run_case(self, scenario: ChaosScenario,
                 schedule: ArrivalSchedule, horizon: float,
                 inject_at: float, fault_duration: float = 600.0,
                 mix: TenantMix | None = None,
                 platform_name: str | None = None,
                 sessions: SessionSpec | None = None):
        """Generator: one scenario over one traffic run.

        ``inject_at`` is seconds after traffic start.  Returns
        ``(FleetReport, ResilienceReport)``; the fleet report carries the
        resilience scorecard in its ``resilience`` field.  ``sessions``
        plays the multi-turn conversational workload through the fault,
        exactly as :meth:`Fleet.run_scenario` would.
        """
        fleet = self.fleet
        if fleet.router_app is None:
            raise StateError("start the fleet before running chaos")
        kernel = self.kernel
        self.probes = []
        self.supervisor.reset()
        self._target_replicas = len(fleet.replicas)
        platform_name = platform_name or fleet.config.platforms[0]
        start = kernel.now
        state: dict = {}

        def injector(env):
            yield env.at(start + inject_at)
            state.update(self._inject_now(scenario, platform_name,
                                          fault_duration))

        stop = kernel.event()
        kernel.spawn(self.supervisor.run(stop), name="chaos:supervisor")
        kernel.spawn(self._probe_loop(stop), name="chaos:probes")
        kernel.spawn(injector(kernel), name=f"chaos:inject:{scenario.name}")
        report = yield from fleet.run_scenario(
            schedule, horizon, mix=mix, label=f"chaos:{scenario.name}",
            sessions=sessions)
        self._probe_once()      # end-of-run confirmation probe
        stop.succeed()
        resilience = self._resilience(scenario, platform_name, report,
                                      state)
        report.resilience = resilience.to_json()
        return report, resilience

    # -- gameday: several faults over one run -----------------------------------

    def run_gameday(self, plan: list[tuple[float, ChaosScenario]],
                    schedule: ArrivalSchedule, horizon: float,
                    fault_duration: float = 600.0,
                    mix: TenantMix | None = None,
                    platform_name: str | None = None,
                    sessions: SessionSpec | None = None):
        """Generator: inject several faults over a single traffic run.

        ``plan`` is ``[(offset_seconds, scenario), ...]``; an optional
        third element overrides ``fault_duration`` for that injection
        (campaign specs carry per-event durations).  Returns
        ``(FleetReport, segments)`` where each segment reports the
        recovery window between its injection and the next one.
        """
        fleet = self.fleet
        kernel = self.kernel
        self.probes = []
        self.supervisor.reset()
        self._target_replicas = len(fleet.replicas)
        platform_name = platform_name or fleet.config.platforms[0]
        start = kernel.now
        plan = sorted(((item[0], item[1],
                        item[2] if len(item) > 2 else fault_duration)
                       for item in plan), key=lambda item: item[0])
        injections: list[dict] = []

        def injector(env):
            for offset, scenario, duration in plan:
                yield env.at(start + offset)
                injections.append(self._inject_now(scenario, platform_name,
                                                   duration))

        stop = kernel.event()
        kernel.spawn(self.supervisor.run(stop), name="chaos:supervisor")
        kernel.spawn(self._probe_loop(stop), name="chaos:probes")
        kernel.spawn(injector(kernel), name="chaos:gameday")
        report = yield from fleet.run_scenario(
            schedule, horizon, mix=mix, label="chaos:gameday",
            sessions=sessions)
        self._probe_once()
        stop.succeed()
        final_stats = fleet.router_app.stats()
        alerts = fleet.alerts
        segments = []
        for i, record in enumerate(injections):
            t0 = record["injected_at"]
            nxt = injections[i + 1] if i + 1 < len(injections) else None
            t1 = nxt["injected_at"] if nxt else float("inf")
            detected, recovered = self._recovery_window(t0, t1)
            errors_end = (nxt["errors_before"] if nxt
                          else report.slo.errors)
            retried_end = (nxt["retried_before"] if nxt
                           else final_stats["retried_ok"])
            first_alert = (alerts.first_firing(t0, t1)
                           if alerts is not None else None)
            segments.append({
                "scenario": record["scenario"],
                "layer": record["layer"],
                "injected_at_s": round(t0, 1),
                "detail": record["detail"],
                "detected_at_s": (None if detected is None
                                  else round(detected, 1)),
                "recovered_at_s": (None if recovered is None
                                   else round(recovered, 1)),
                "mttr_s": (None if recovered is None
                           else round(recovered - t0, 1)),
                "detection_delay_alert_s": (None if first_alert is None
                                            else round(first_alert - t0,
                                                       1)),
                "requests_lost": errors_end - record["errors_before"],
                "requests_retried": (retried_end
                                     - record["retried_before"]),
                "error": record.get("error"),
            })
        report.resilience = {"gameday": segments,
                             "repair_events": [e.row() for e in
                                               self.supervisor.events]}
        if alerts is not None:
            report.resilience["incidents"] = \
                self._incident_log(injections).to_json()
        return report, segments

    # -- scoring ----------------------------------------------------------------

    def _recovery_window(self, t0: float,
                         t1: float) -> tuple[float | None, float | None]:
        """(detected_at, recovered_at) from probes in ``[t0, t1)``.

        Never-impaired windows report ``(None, t0)`` — nothing to detect,
        recovery immediate.  Recovery requires every probe after the last
        bad one (within the window) to be good.
        """
        window = [p for p in self.probes if t0 <= p.time < t1]
        bad = [p for p in window if not p.ok]
        if not bad:
            return None, t0
        last_bad = bad[-1].time
        good_after = [p for p in window if p.time > last_bad]
        if good_after:
            return bad[0].time, good_after[0].time
        return bad[0].time, None

    def _incident_log(self, injections: list[dict]) -> IncidentLog:
        """Merge this run's event streams into one incident timeline."""
        alerts = self.fleet.alerts
        return IncidentLog.build(
            alerts=alerts.events if alerts is not None else (),
            injections=[(rec["injected_at"], rec["scenario"],
                         rec["layer"]) for rec in injections
                        if rec.get("injected_at") is not None],
            repairs=[(e.time, e.action, e.replica)
                     for e in self.supervisor.events],
            scales=[(e.time, e.action,
                     f"{e.replicas_before}->{e.replicas_after}")
                    for e in self.fleet.autoscaler.events])

    def _resilience(self, scenario: ChaosScenario, platform_name: str,
                    report: FleetReport, state: dict) -> ResilienceReport:
        injected_at = state.get("injected_at")
        out = ResilienceReport(
            scenario=scenario.name, layer=scenario.layer,
            platform=platform_name,
            injected_at=injected_at if injected_at is not None else -1.0,
            detail=state.get("detail", {}),
            error=state.get("error"))
        if injected_at is None:
            out.error = out.error or "fault never injected"
            return out
        detected, recovered = self._recovery_window(injected_at,
                                                    float("inf"))
        out.detected_at = detected
        out.recovered_at = recovered
        out.mttr_s = (None if recovered is None
                      else recovered - injected_at)
        out.recovery_ok = recovered is not None and out.error is None
        stats = self.fleet.router_app.stats()
        out.failed_forwards = (stats["failed_forwards"]
                               - state.get("failed_forwards_before", 0))
        out.requests_retried = (stats["retried_ok"]
                                - state.get("retried_before", 0))
        # Delta since injection, like the counters above: errors from
        # before the fault are not this fault's losses.
        out.requests_lost = (report.slo.errors
                             - state.get("errors_before", 0))
        responses = [e.time for e in self.supervisor.events
                     if e.time >= injected_at]
        responses += [e.time for e in self.fleet.autoscaler.events
                      if e.time >= injected_at]
        out.first_response_s = (min(responses) - injected_at
                                if responses else None)
        out.repair_events = [e.row() for e in self.supervisor.events]
        alerts = self.fleet.alerts
        if alerts is not None:
            first = alerts.first_firing(injected_at)
            out.detection_delay_alert_s = (None if first is None
                                           else first - injected_at)
            out.alerts_fired = alerts.fired_count(injected_at)
            log = self._incident_log([state])
            out.false_alerts = log.false_alerts()
            out.incidents = log.to_json()
        return out
