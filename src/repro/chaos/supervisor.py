"""Replica supervisor: the paper's "cron job" half of HPC resilience.

The paper notes HPC users can recreate Kubernetes-style resilience "with
techniques like using cron jobs and deploying their own request
routers".  PR 1 built the router; this is the cron job: a control loop
that inspects every fleet replica, replaces dead ones through the
unified deployer, re-points the router when a Kubernetes pod resurfaces
on a different node, and keeps retrying when a deploy fails mid-outage
(no capacity, registry down).  Every action lands in an event log the
chaos orchestrator mines for reaction times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..errors import ConfigurationError, ReproError, StateError

if TYPE_CHECKING:  # pragma: no cover
    from ..fleet.fleet import Fleet
    from ..simkernel import Event


@dataclass(frozen=True)
class SupervisorConfig:
    """Cron cadence and patience.

    ``replace_after`` is how long a K8s replica may sit not-ready
    (CrashLoopBackOff, ImagePullBackOff, rescheduling) before the
    supervisor gives up on self-healing and redeploys the release.
    """

    interval: float = 30.0
    replace_after: float = 1200.0

    def __post_init__(self):
        if self.interval <= 0 or self.replace_after <= 0:
            raise ConfigurationError(
                "supervisor interval and replace_after must be positive")


@dataclass
class RepairEvent:
    """One supervisor action, for the resilience report."""

    time: float
    replica: str
    action: str        # replace | replaced | replace_failed | rebind
                       # | redeploy | redeploy_failed
    detail: str = ""

    def row(self) -> dict:
        return {"t": round(self.time, 1), "replica": self.replica,
                "action": self.action, "detail": self.detail}


class ReplicaSupervisor:
    """Periodic health sweep over a fleet's replicas."""

    def __init__(self, fleet: Fleet,
                 config: SupervisorConfig | None = None):
        self.fleet = fleet
        self.config = config or SupervisorConfig()
        self.kernel = fleet.kernel
        self.events: list[RepairEvent] = []
        self.deficit = 0      # replicas discarded but not yet replaced
        self._unhealthy_since: dict[str, float] = {}

    def reset(self) -> None:
        self.events = []
        self.deficit = 0
        self._unhealthy_since = {}

    def _note(self, replica: str, action: str, detail: str = "") -> None:
        self.events.append(RepairEvent(self.kernel.now, replica, action,
                                       detail))
        self.kernel.trace.emit("chaos.repair", replica=replica,
                               action=action, detail=detail)

    # -- control loop -----------------------------------------------------------

    def run(self, stop_event: Event):
        """Generator process: sweep every ``interval`` until stopped."""
        kernel = self.kernel
        while not stop_event.triggered:
            yield kernel.any_of(
                [stop_event, kernel.timeout(self.config.interval)])
            if stop_event.triggered:
                return
            yield from self._sweep()

    def _sweep(self):
        yield from self._work_off_deficit()
        for replica in list(self.fleet.replicas):
            status, detail = self.fleet.replica_status(replica)
            if status == "ok":
                self._unhealthy_since.pop(replica.name, None)
                continue
            if status == "moved":
                self.fleet.rebind_replica(replica, detail)
                self._unhealthy_since.pop(replica.name, None)
                self._note(replica.name, "rebind", detail)
                continue
            first = self._unhealthy_since.setdefault(replica.name,
                                                     self.kernel.now)
            if status == "dead":
                yield from self._replace(replica, detail)
            elif (self.kernel.now - first
                    >= self.config.replace_after):
                yield from self._replace(
                    replica, f"not ready for "
                    f"{self.kernel.now - first:.0f}s ({detail})")

    def _work_off_deficit(self):
        while self.deficit > 0:
            try:
                added = yield from self.fleet.add_replicas(1)
            except (ReproError, StateError) as exc:
                self._note("-", "redeploy_failed", str(exc))
                return
            self.deficit -= 1
            self._note(added[0].name, "redeploy",
                       f"deficit now {self.deficit}")

    def _replace(self, replica, detail: str):
        self._note(replica.name, "replace", detail)
        self._unhealthy_since.pop(replica.name, None)
        try:
            successor = yield from self.fleet.replace_replica(replica)
        except (ReproError, StateError) as exc:
            # The dead replica is already deregistered; remember the
            # deficit and redeploy on a later sweep.
            self.deficit += 1
            self._note(replica.name, "replace_failed", str(exc))
            return
        self._note(successor.name, "replaced",
                   f"for {replica.name} on {successor.platform_name}")
