"""Scenario-matrix runner: the full catalog, both platform kinds, one JSON.

Each case gets a *fresh* converged site and fleet (faults never bleed
between cases), runs the same open-loop traffic, injects its fault at
the same scheduled time, and contributes one row to the machine-readable
``chaos_scorecard.json``.  Everything derives from the seed and the
simulation clock, so the same seed produces a byte-identical scorecard.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

from ..experiments.common import canonical_json_text
from ..fleet import AutoscalerConfig, SloSpec
from .orchestrator import ChaosOrchestrator, ResilienceReport
from .scenarios import ChaosScenario, catalog
from .supervisor import SupervisorConfig

QUANT = "RedHatAI/Llama-4-Scout-17B-16E-Instruct-quantized.w4a16"

#: Which site platform hosts the fleet for each platform kind.
PLATFORM_FLEETS = {"hpc": "hops", "k8s": "goodall"}


@dataclass(frozen=True)
class ChaosRunConfig:
    """Matrix-wide knobs; ``quick`` for CI, ``long`` for the nightly."""

    seed: int = 42
    mode: str = "quick"
    rate_rps: float = 0.15
    horizon: float = 3600.0
    inject_at: float = 900.0
    fault_duration: float = 600.0
    probe_interval: float = 15.0
    initial_replicas: int = 2
    supervisor_interval: float = 30.0

    @classmethod
    def quick(cls, seed: int = 42) -> ChaosRunConfig:
        return cls(seed=seed)

    @classmethod
    def long(cls, seed: int = 42) -> ChaosRunConfig:
        return cls(seed=seed, mode="long", rate_rps=0.25,
                   horizon=4 * 3600.0, inject_at=1800.0,
                   fault_duration=1200.0)


def case_spec(config: ChaosRunConfig, fleet_platform: str):
    """The matrix cell as a declarative :class:`ScenarioSpec`.

    Chaos cases construct their site and fleet through the campaign
    spec, so the matrix runner and the campaign runner provably build
    identical worlds for identical knobs.
    """
    # Deferred import: repro.campaign.spec <-> repro.chaos is a cycle at
    # module scope (the spec validates scenario names against the
    # catalog).
    from ..campaign.spec import ScenarioSpec, ScheduleSpec, SiteSpec
    return ScenarioSpec(
        name=f"chaos:{fleet_platform}", seed=config.seed, model=QUANT,
        tensor_parallel_size=2, platforms=(fleet_platform,),
        router_platform="hops", policy="least-outstanding",
        initial_replicas=config.initial_replicas, horizon=config.horizon,
        site=SiteSpec(hops_nodes=6, eldorado_nodes=4, goodall_nodes=5,
                      cee_nodes=1),
        schedule=ScheduleSpec(kind="poisson", rate_rps=config.rate_rps),
        slo=SloSpec(ttft_target=10.0, e2e_target=120.0),
        autoscaler=AutoscalerConfig(
            min_replicas=config.initial_replicas, max_replicas=3,
            target_outstanding=8.0),
        probe_interval=config.probe_interval,
        supervisor_interval=config.supervisor_interval,
        # Tighter than the fleet default: the alert evaluator runs at
        # the scrape cadence, and telemetry-driven detection delay is
        # only meaningful when resolved finer than the fault duration.
        scrape_interval=60.0)


def run_case(scenario: ChaosScenario | str, platform_kind: str,
             config: ChaosRunConfig | None = None,
             fleet_platform: str | None = None):
    """One (scenario, platform) cell: returns ``(row, report, res)``."""
    config = config or ChaosRunConfig()
    if isinstance(scenario, str):
        scenario = catalog(names=[scenario])[0]
    if platform_kind not in PLATFORM_FLEETS:
        raise ValueError(f"platform kind must be one of "
                         f"{sorted(PLATFORM_FLEETS)}: {platform_kind!r}")
    fleet_platform = fleet_platform or PLATFORM_FLEETS[platform_kind]
    spec = case_spec(config, fleet_platform)
    fleet = spec.build_fleet(spec.build_site())
    orchestrator = ChaosOrchestrator(
        fleet,
        supervisor=SupervisorConfig(interval=spec.supervisor_interval),
        probe_interval=spec.probe_interval)
    schedule = spec.schedule.build()

    def case(env):
        yield from fleet.start(initial_replicas=config.initial_replicas)
        result = yield from orchestrator.run_case(
            scenario, schedule, config.horizon, config.inject_at,
            fault_duration=config.fault_duration)
        return result

    kernel = fleet.kernel
    report, res = kernel.run(until=kernel.spawn(case(kernel),
                                                name="chaos:case"))
    fleet.shutdown()
    row = _case_row(platform_kind, fleet_platform, scenario, report, res)
    return row, report, res


def _case_row(platform_kind: str, fleet_platform: str,
              scenario: ChaosScenario, report,
              res: ResilienceReport) -> dict:
    return {
        "platform": platform_kind,
        "fleet_platform": fleet_platform,
        "scenario": scenario.name,
        "layer": scenario.layer,
        "resilience": res.to_json(),
        "fleet": {
            "arrivals": report.arrivals,
            "errors": report.slo.errors,
            "attainment": round(report.slo.attainment, 4),
            "peak_replicas": report.peak_replicas,
            "final_replicas": report.final_replicas,
            "scale_events": len(report.scale_events),
        },
    }


def run_matrix(platform_kinds=("hpc", "k8s"), seed: int = 42,
               mode: str = "quick", scenarios: list[str] | None = None,
               on_case: Callable[[dict, ResilienceReport], None]
               | None = None) -> dict:
    """The full applicable catalog on every requested platform kind."""
    config = (ChaosRunConfig.long(seed) if mode == "long"
              else ChaosRunConfig.quick(seed))
    cases = []
    for kind in platform_kinds:
        for scenario in catalog(kind, scenarios):
            row, _report, res = run_case(scenario, kind, config)
            cases.append(row)
            if on_case is not None:
                on_case(row, res)
    cases.sort(key=lambda c: (c["platform"], c["scenario"]))
    mttrs = [c["resilience"]["mttr_s"] for c in cases
             if c["resilience"]["mttr_s"] is not None]
    recovered = sum(c["resilience"]["recovery_ok"] for c in cases)
    alert_delays = [c["resilience"]["detection_delay_alert_s"]
                    for c in cases
                    if c["resilience"]["detection_delay_alert_s"]
                    is not None]
    return {
        "schema": "chaos_scorecard/v1",
        "seed": seed,
        "mode": config.mode,
        "platforms": sorted(platform_kinds),
        "cases": cases,
        "summary": {
            "cases": len(cases),
            "recovered": int(recovered),
            "mttr_mean_s": (round(sum(mttrs) / len(mttrs), 1)
                            if mttrs else None),
            "mttr_max_s": round(max(mttrs), 1) if mttrs else None,
            "requests_lost_total": sum(
                c["resilience"]["requests_lost"] for c in cases),
            "requests_retried_total": sum(
                c["resilience"]["requests_retried"] for c in cases),
            # Telemetry-driven detection, next to the probe ground
            # truth above: how many faults the rule set noticed at all,
            # how fast, and how often it paged without cause.
            "alert_detected": len(alert_delays),
            "alert_delay_mean_s": (round(sum(alert_delays)
                                         / len(alert_delays), 1)
                                   if alert_delays else None),
            "false_alerts_total": sum(
                c["resilience"]["false_alerts"] for c in cases),
        },
    }


def scorecard_text(scorecard: dict) -> str:
    """Canonical serialization: byte-identical for identical runs."""
    return canonical_json_text(scorecard)
