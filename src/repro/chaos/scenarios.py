"""The chaos scenario catalog: one fault per layer of the converged stack.

Every scenario is a named, deterministic fault injector.  Injectors run
at a scheduled simulated time against a live fleet, mutate exactly one
layer (engine, hardware, network, registry, WLM, Kubernetes), schedule
their own heal where the fault is transient, and return a detail dict
for the resilience scorecard.  Victim selection draws from a named RNG
stream (``chaos.<scenario>``), so a seed fully determines every run.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable
from typing import TYPE_CHECKING

import numpy as np

from ..cluster.platform import HPCPlatform
from ..errors import StateError
from ..vllm import faults

if TYPE_CHECKING:  # pragma: no cover
    from ..core.site import ConvergedSite
    from ..fleet.fleet import Fleet, Replica
    from ..hardware.node import Node
    from ..simkernel import SimKernel
    from ..vllm.engine import LLMEngine


@dataclass
class ChaosContext:
    """What an injector sees: the site, the fleet, and its RNG stream."""

    site: ConvergedSite
    fleet: Fleet
    platform_name: str
    fault_duration: float
    rng: np.random.Generator

    @property
    def kernel(self) -> SimKernel:
        return self.site.kernel

    def platform(self):
        return self.site.platform(self.platform_name)

    @property
    def is_hpc(self) -> bool:
        return isinstance(self.platform(), HPCPlatform)

    def victim(self) -> Replica:
        """Pick one replica deterministically from the scenario stream.

        Replicas on the context's platform are preferred — a mixed-fleet
        game day targeting ``goodall`` must not hand a Slurm replica to a
        Kubernetes injector.
        """
        candidates = sorted(
            (r for r in self.fleet.replicas
             if r.platform_name == self.platform_name),
            key=lambda r: r.name) or sorted(self.fleet.replicas,
                                            key=lambda r: r.name)
        if not candidates:
            raise StateError("chaos: fleet has no replicas to target")
        return candidates[int(self.rng.integers(len(candidates)))]

    def node_of(self, hostname: str) -> Node:
        for node in self.platform().nodes:
            if node.hostname == hostname:
                return node
        raise StateError(f"chaos: no node {hostname!r} on "
                         f"{self.platform_name!r}")

    def after(self, delay: float, action: Callable[[], None],
              name: str) -> None:
        """Schedule a heal action on the simkernel event loop."""
        kernel = self.kernel

        def heal(env):
            yield env.timeout(delay)
            action()
            env.trace.emit("chaos.heal", action=name)

        kernel.spawn(heal(kernel), name=f"chaos:heal:{name}")


# -- layer access helpers ---------------------------------------------------------


def engine_of(fleet: Fleet, replica: Replica) -> LLMEngine:
    """The live vLLM engine backing a replica, on either platform kind."""
    deployment = replica.deployment
    if deployment.container is not None:          # HPC: podman container
        engine = getattr(deployment.container.app, "engine", None)
        if engine is not None:
            return engine
        raise StateError(f"chaos: replica {replica.name!r} has no engine")
    platform = fleet.site.platform(replica.platform_name)
    for container in platform.cluster.cri.containers:
        if (container.running
                and container.opts.name.startswith(f"{replica.name}-")
                and getattr(container.app, "engine", None) is not None):
            return container.app.engine
    raise StateError(f"chaos: no live engine for replica {replica.name!r}")


def container_of(fleet: Fleet, replica: Replica):
    """The running main container backing a replica."""
    deployment = replica.deployment
    if deployment.container is not None:
        return deployment.container
    platform = fleet.site.platform(replica.platform_name)
    for container in platform.cluster.cri.containers:
        if (container.running
                and container.opts.name.startswith(f"{replica.name}-")
                and getattr(container.app, "engine", None) is not None):
            return container
    raise StateError(f"chaos: no live container for {replica.name!r}")


def _pod_of(platform, replica: Replica):
    from ..k8s.objects import PodPhase
    for pod in platform.cluster.api.list("Pod"):
        if (pod.meta.labels.get("app") == replica.name and not pod.deleted
                and pod.phase in (PodPhase.PENDING, PodPhase.RUNNING)):
            return pod
    raise StateError(f"chaos: no pod for release {replica.name!r}")


def _stop_containers_on(platform: HPCPlatform, hostname: str) -> list[str]:
    stopped = []
    for runtime in (platform.podman, platform.apptainer):
        for container in list(runtime.containers):
            if container.running and container.node.hostname == hostname:
                container.stop()
                stopped.append(container.name)
    return stopped


# -- injectors --------------------------------------------------------------------


def _inject_engine_oom(ctx: ChaosContext) -> dict:
    victim = ctx.victim()
    faults.attach(engine_of(ctx.fleet, victim), faults.CrashAtTime(
        ctx.kernel.now, reason="memory leak: engine OOM"))
    return {"victim": victim.name, "node": victim.backend_host}


def _inject_nccl_timeout(ctx: ChaosContext) -> dict:
    from ..bench.sharegpt import ShareGptSampler
    victim = ctx.victim()
    threshold = 2
    faults.attach(engine_of(ctx.fleet, victim), faults.CrashOnConcurrency(
        threshold, reason="NCCL collective timeout"))
    # A concurrent microburst makes sure a batch actually forms on the
    # victim (collective timeouts need collectives in flight).
    burst = 4 * len(ctx.fleet.replicas)
    sampler = ShareGptSampler(ctx.rng, max_total_tokens=2048)
    for sample in sampler.sample(burst):
        ctx.fleet.submit("chaos-burst", sample)
    return {"victim": victim.name, "node": victim.backend_host,
            "threshold": threshold, "burst": burst}


def _inject_node_crash(ctx: ChaosContext) -> dict:
    victim = ctx.victim()
    host = victim.backend_host
    platform = ctx.platform()
    if ctx.is_hpc:
        platform.wlm.fail_node(host)
        stopped = _stop_containers_on(platform, host)
        ctx.after(ctx.fault_duration,
                  lambda: platform.wlm.restore_node(host),
                  name=f"restore:{host}")
    else:
        platform.cluster.drain(host)
        stopped = []
        ctx.after(ctx.fault_duration,
                  lambda: platform.cluster.uncordon(host),
                  name=f"uncordon:{host}")
    return {"victim": victim.name, "node": host,
            "containers_stopped": sorted(stopped),
            "heal_after_s": ctx.fault_duration}


def _inject_gpu_ecc(ctx: ChaosContext) -> dict:
    victim = ctx.victim()
    host = victim.backend_host
    node = ctx.node_of(host)
    platform = ctx.platform()
    if ctx.is_hpc:
        container = victim.deployment.container
        index = node.fail_gpu(
            container.ctx.gpu_indices[0] if container.ctx.gpu_indices
            else None)
        faults.attach(engine_of(ctx.fleet, victim), faults.CrashAtTime(
            ctx.kernel.now,
            reason=f"uncorrectable ECC error on GPU {index}"))
    else:
        # The device plugin fails the GPU out of the allocatable pool and
        # the pod is evicted; the scheduler must place the replacement on
        # a node that still has enough healthy devices.
        index = node.fail_gpu()
        pod = _pod_of(platform, victim)
        platform.cluster.api.delete("Pod", pod.meta.name,
                                    pod.meta.namespace)
    ctx.after(ctx.fault_duration, lambda: node.repair_gpu(index),
              name=f"repair:{host}:gpu{index}")
    return {"victim": victim.name, "node": host, "gpu": index,
            "heal_after_s": ctx.fault_duration}


def _inject_network_partition(ctx: ChaosContext) -> dict:
    victim = ctx.victim()
    host = victim.backend_host
    fabric = ctx.site.fabric
    fabric.partition_host(host)
    ctx.after(ctx.fault_duration, lambda: fabric.heal_host(host),
              name=f"heal:{host}")
    return {"victim": victim.name, "node": host,
            "heal_after_s": ctx.fault_duration}


def _inject_latency_spike(ctx: ChaosContext) -> dict:
    factor = 100000.0  # 0.2 ms/hop -> 20 s/hop: e2e blows the SLO
    fabric = ctx.site.fabric
    fabric.set_latency_factor(factor)
    ctx.after(ctx.fault_duration, lambda: fabric.set_latency_factor(1.0),
              name="latency:restore")
    return {"factor": factor, "heal_after_s": ctx.fault_duration}


def _inject_registry_outage(ctx: ChaosContext) -> dict:
    victim = ctx.victim()
    platform = ctx.platform()
    runtime = (platform.runtime() if ctx.is_hpc else platform.cluster.cri)
    registry = runtime.registry
    registry.set_available(False)
    # Concurrent cache GC (node reimage): the serving image must be
    # re-pulled, so recovery blocks on the registry coming back.
    image_ref = ctx.fleet.wf.package.variant_for(
        platform.gpu_variant).image_ref
    evicted = sum(cache.evict(image_ref)
                  for cache in runtime.caches.values())
    container_of(ctx.fleet, victim).stop()
    ctx.after(ctx.fault_duration, lambda: registry.set_available(True),
              name=f"registry:{registry.name}")
    return {"victim": victim.name, "registry": registry.name,
            "image": image_ref, "caches_evicted": int(evicted),
            "heal_after_s": ctx.fault_duration}


def _inject_wlm_preemption(ctx: ChaosContext) -> dict:
    victim = ctx.victim()
    host = victim.backend_host
    platform = ctx.platform()
    wlm = platform.wlm
    # An emergency maintenance reservation lands on the replica's node:
    # the WLM kills jobs there (paper Fig. 12 run 3) and operators stop
    # user services for the window.
    wlm.add_reservation(start=ctx.kernel.now, duration=ctx.fault_duration,
                        reason="emergency maintenance (chaos)",
                        nodes=[host])
    wlm.fail_node(host)
    stopped = _stop_containers_on(platform, host)
    ctx.after(ctx.fault_duration, lambda: wlm.restore_node(host),
              name=f"unreserve:{host}")
    return {"victim": victim.name, "node": host, "wlm": wlm.name,
            "containers_stopped": sorted(stopped),
            "heal_after_s": ctx.fault_duration}


def _inject_pod_eviction(ctx: ChaosContext) -> dict:
    victim = ctx.victim()
    platform = ctx.platform()
    pod = _pod_of(platform, victim)
    platform.cluster.api.delete("Pod", pod.meta.name, pod.meta.namespace)
    return {"victim": victim.name, "pod": pod.meta.name,
            "node": pod.node_name}


# -- the catalog ------------------------------------------------------------------


@dataclass(frozen=True)
class ChaosScenario:
    """One named fault: which layer it attacks and how to inject it."""

    name: str
    layer: str
    description: str
    inject: Callable[[ChaosContext], dict]
    platforms: tuple[str, ...] = ("hpc", "k8s")


CATALOG: tuple[ChaosScenario, ...] = (
    ChaosScenario(
        "engine_oom", "vllm",
        "memory-leak OOM kills a replica engine (Fig. 12 run 1)",
        _inject_engine_oom),
    ChaosScenario(
        "nccl_timeout", "vllm",
        "NCCL collective timeout once the running batch reaches a "
        "threshold", _inject_nccl_timeout),
    ChaosScenario(
        "node_crash", "hardware",
        "a compute node hosting a replica goes down, then returns",
        _inject_node_crash),
    ChaosScenario(
        "gpu_ecc", "hardware",
        "an uncorrectable GPU ECC error fails one device out of the "
        "allocatable pool", _inject_gpu_ecc),
    ChaosScenario(
        "network_partition", "net",
        "a replica's node is partitioned from the site fabric",
        _inject_network_partition),
    ChaosScenario(
        "latency_spike", "net",
        "site-wide per-hop latency multiplies during the fault window",
        _inject_latency_spike),
    ChaosScenario(
        "registry_outage", "containers",
        "the platform's registry goes down while a replica needs a "
        "cold-cache restart", _inject_registry_outage),
    ChaosScenario(
        "wlm_preemption", "wlm",
        "an emergency maintenance reservation preempts the replica's "
        "node through the workload manager", _inject_wlm_preemption,
        platforms=("hpc",)),
    ChaosScenario(
        "pod_eviction", "k8s",
        "the replica's pod is evicted; the Deployment controller must "
        "replace it", _inject_pod_eviction,
        platforms=("k8s",)),
)


def catalog(platform_kind: str | None = None,
            names: list[str] | None = None) -> list[ChaosScenario]:
    """The catalog filtered by platform kind ('hpc'/'k8s') and names."""
    out = list(CATALOG)
    if platform_kind is not None:
        out = [s for s in out if platform_kind in s.platforms]
    if names is not None:
        unknown = set(names) - {s.name for s in CATALOG}
        if unknown:
            raise StateError(f"unknown chaos scenarios: {sorted(unknown)}")
        out = [s for s in out if s.name in names]
    return out
