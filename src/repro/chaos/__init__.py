"""Fleet-level chaos engineering: fault injection + resilience scorecards.

The paper's reliability story is anecdotal — run 1 of Fig. 12 "crashed
with a batch size of 512 queries", and Kubernetes restarted leaky
containers.  This package turns the PR-1 fleet into a resilience
*evaluation* platform: a :class:`ChaosOrchestrator` schedules fault
injections on the simkernel event loop, a scenario catalog spans every
layer of the converged stack (engine, hardware, network, registry, WLM,
Kubernetes), a :class:`ReplicaSupervisor` plays the paper's "cron jobs +
request routers" recovery story, and every run produces a
:class:`ResilienceReport` (MTTR, SLO attainment under fault, requests
lost vs retried, reaction times) merged into the fleet scorecard.
"""

from .orchestrator import ChaosOrchestrator, ResilienceReport
from .runner import (ChaosRunConfig, PLATFORM_FLEETS, run_case, run_matrix,
                     scorecard_text)
from .scenarios import CATALOG, ChaosContext, ChaosScenario, catalog
from .supervisor import RepairEvent, ReplicaSupervisor, SupervisorConfig

__all__ = [
    "CATALOG",
    "ChaosContext",
    "ChaosOrchestrator",
    "ChaosRunConfig",
    "ChaosScenario",
    "PLATFORM_FLEETS",
    "RepairEvent",
    "ReplicaSupervisor",
    "ResilienceReport",
    "SupervisorConfig",
    "catalog",
    "run_case",
    "run_matrix",
    "scorecard_text",
]
